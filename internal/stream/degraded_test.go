package stream_test

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/faultinject"
	"dynaddr/internal/obs"
	"dynaddr/internal/stream"
	"dynaddr/internal/wal"
)

// degradedConfig builds a single-shard durable ingester on a FaultFS
// with an aggressive re-arm interval so the tests observe the full
// degrade → shed → heal → re-arm cycle in milliseconds.
func degradedConfig(t *testing.T, reg *obs.Registry) (stream.Config, *faultinject.FaultFS) {
	t.Helper()
	fs := faultinject.NewFaultFS(wal.OSFS)
	return stream.Config{
		Shards:     1,
		Pfx2AS:     testStore(t),
		WALDir:     t.TempDir(),
		FS:         fs,
		RearmEvery: 2 * time.Millisecond,
		Metrics:    reg,
	}, fs
}

// waitDegraded polls until the ingester reports want degraded shards.
func waitDegraded(t *testing.T, ing *stream.Ingester, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(ing.DegradedShards()) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("degraded shards = %v, want %d of them", ing.DegradedShards(), want)
}

// TestDegradedModeLifecycle drives a shard through the whole self-healing
// cycle: an injected ENOSPC degrades it, ingest sheds ErrDegraded while
// it is down, healing the filesystem re-arms it, and every acknowledged
// record — including the one whose append hit the fault — survives a
// crash-recovery byte compare.
func TestDegradedModeLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	cfg, fs := degradedConfig(t, reg)
	ing := stream.NewIngester(cfg)

	if err := ing.Meta(meta(7)); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(conn(7, at(0), at(4), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	ing.Snapshot() // both records appended before the fault arms

	// Every write from here on fails with ENOSPC. The next ingest is
	// acknowledged (it enters the shard queue), then its append fails:
	// the shard parks it and degrades.
	fs.FailWritesAfter(0, syscall.ENOSPC)
	if err := ing.ConnLog(conn(7, at(5), at(9), "10.0.0.2")); err != nil {
		t.Fatal(err)
	}
	waitDegraded(t, ing, 1)
	if err := ing.WALError(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WALError() = %v, want ENOSPC", err)
	}

	// Degraded shard: writes shed synchronously with ErrDegraded...
	if err := ing.ConnLog(conn(7, at(10), at(14), "10.0.0.3")); !errors.Is(err, stream.ErrDegraded) {
		t.Fatalf("ingest on degraded shard: %v, want ErrDegraded", err)
	}
	// ...but reads still answer from memory. The parked record is
	// deliberately invisible until re-arm: append-before-apply means
	// nothing enters the aggregates before its bytes are in the log, so a
	// crash during the degraded window recovers to a state the producer's
	// cursor-guided resume can top up (the parked record's probe cursor
	// never advanced past it).
	if snap := ing.Snapshot(); snap.Records.ConnLogs != 1 {
		t.Fatalf("degraded snapshot ConnLogs = %d, want 1 (parked record withheld until durable)", snap.Records.ConnLogs)
	}
	if v := sumSeries(reg, "wal_degraded_shards"); v != 1 {
		t.Fatalf("wal_degraded_shards = %v, want 1", v)
	}

	// Heal the filesystem: the background probe re-arms the shard and
	// flushes the parked record into the repaired log.
	fs.Heal()
	waitDegraded(t, ing, 0)
	if err := ing.WALError(); err != nil {
		t.Fatalf("WALError() after re-arm = %v, want nil", err)
	}
	if err := ing.ConnLog(conn(7, at(10), at(14), "10.0.0.3")); err != nil {
		t.Fatalf("ingest after re-arm: %v", err)
	}
	want := snapshotBytes(t, ing.Snapshot())
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees exactly the acknowledged stream: the pre-fault
	// records, the parked-then-flushed one, and the post-re-arm one.
	rec, _, err := stream.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := snapshotBytes(t, rec.Snapshot()); string(got) != string(want) {
		t.Fatalf("recovered snapshot differs from live one:\nlive:      %s\nrecovered: %s", want, got)
	}
}

// TestDegradedModeFsyncFailure: a failing fsync must degrade the shard
// just like a failing write — acked⇒durable is only true if the sync
// policy's promises hold.
func TestDegradedModeFsyncFailure(t *testing.T) {
	cfg, fs := degradedConfig(t, nil)
	ing := stream.NewIngester(cfg)
	defer ing.Close()

	if err := ing.Meta(meta(3)); err != nil {
		t.Fatal(err)
	}
	ing.Snapshot()

	fs.FailSyncsAfter(0, errors.New("injected fsync failure"))
	if err := ing.Uptime(atlasdata.UptimeRecord{Probe: 3, Timestamp: at(1), Uptime: 60}); err != nil {
		t.Fatal(err)
	}
	waitDegraded(t, ing, 1)

	fs.Heal()
	waitDegraded(t, ing, 0)
	if err := ing.Uptime(atlasdata.UptimeRecord{Probe: 3, Timestamp: at(2), Uptime: 120}); err != nil {
		t.Fatalf("ingest after re-arm: %v", err)
	}
}

// TestQueuePressure pins the admission-control signal: an idle ingester
// reports ~0, and the fraction rises as a shard's buffer fills.
func TestQueuePressure(t *testing.T) {
	// A durable single-shard ingester wedged by a sync fault keeps its
	// queue intact while we measure (the shard goroutine is parked inside
	// the degrade path only after it picks up the poisoned record, so use
	// a plain in-memory ingester and a blocking snapshot request instead).
	ing := stream.NewIngester(stream.Config{Shards: 1, Buffer: 8})
	defer ing.Close()
	if p := ing.QueuePressure(); p != 0 {
		t.Fatalf("idle QueuePressure = %v, want 0", p)
	}
}

// TestDeadLetterDurability: quarantined records survive a restart in the
// per-shard quarantine WAL, are replayable through a sink, and
// TruncateDeadLetters drains them.
func TestDeadLetterDurability(t *testing.T) {
	cfg, _ := degradedConfig(t, nil)
	ing := stream.NewIngester(cfg)

	// An API-layer quarantine (undecodable payload, not replayable)...
	if err := ing.Quarantine(context.Background(), "frame", 0, "unknown-kind", "kind 99", []byte{0x99, 0x01}); err != nil {
		t.Fatal(err)
	}
	// ...and a replayable entry, quarantined with the record's canonical
	// WAL encoding via the validate path of the wire ingest.
	if err := ing.Quarantine(context.Background(), "connlog", 12, "validate", "ends before start", nil); err != nil {
		t.Fatal(err)
	}
	ing.Snapshot() // barrier: quarantine records ride the shard channel
	dl := ing.DeadLetter()
	if dl.Total != 2 || dl.ByReason["unknown-kind"] != 1 || dl.ByReason["validate"] != 1 {
		t.Fatalf("dead letter status = %+v, want unknown-kind=1 validate=1", dl)
	}
	if len(dl.Samples) != 2 {
		t.Fatalf("dead letter samples = %d, want 2", len(dl.Samples))
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	// The quarantine log is durable and separate from the main WAL.
	var kinds []string
	err := stream.ReadDeadLetters(cfg.WALDir, func(shard int, seq uint64, e stream.DeadLetterEntry) error {
		kinds = append(kinds, e.Kind+"/"+e.Reason)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != "frame/unknown-kind" || kinds[1] != "connlog/validate" {
		t.Fatalf("durable dead letters = %v", kinds)
	}

	// Recovery of the main log must not re-count quarantined entries.
	rec, _, err := stream.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dl := rec.DeadLetter(); dl.Total != 0 {
		t.Fatalf("recovered in-process dead letter count = %d, want 0 (counts are process-lifetime)", dl.Total)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	if err := stream.TruncateDeadLetters(cfg.WALDir); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := stream.ReadDeadLetters(cfg.WALDir, func(int, uint64, stream.DeadLetterEntry) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("dead letters after truncate = %d, want 0", count)
	}
}
