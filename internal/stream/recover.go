package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/wal"
)

// Wire codec: one kind byte followed by the record's canonical
// atlasdata encoding (the same line formats the batch archives use, so
// a WAL is inspectable with standard tools). The codec must stay
// deterministic — recovery replays payloads through shard.apply and
// expects the exact records the original run saw.

func encodeRecord(rec record) ([]byte, error) {
	var (
		body []byte
		err  error
	)
	switch rec.kind {
	case kindMeta:
		body, err = atlasdata.MarshalProbeMeta(rec.meta)
	case kindConn:
		body, err = atlasdata.MarshalConnLog(rec.conn)
	case kindKRoot:
		body, err = atlasdata.MarshalKRoot(rec.kroot)
	case kindUptime:
		body, err = atlasdata.MarshalUptime(rec.uptime)
	default:
		return nil, fmt.Errorf("stream: record kind %d is not persistable", rec.kind)
	}
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(rec.kind))
	return append(out, body...), nil
}

func decodeRecord(payload []byte) (record, error) {
	if len(payload) < 2 {
		return record{}, errors.New("stream: WAL payload too short")
	}
	kind, body := recordKind(payload[0]), payload[1:]
	var (
		rec = record{kind: kind}
		err error
	)
	switch kind {
	case kindMeta:
		rec.meta, err = atlasdata.UnmarshalProbeMeta(body)
	case kindConn:
		rec.conn, err = atlasdata.UnmarshalConnLog(body)
	case kindKRoot:
		rec.kroot, err = atlasdata.UnmarshalKRoot(body)
	case kindUptime:
		rec.uptime, err = atlasdata.UnmarshalUptime(body)
	default:
		err = fmt.Errorf("stream: unknown WAL record kind %d", kind)
	}
	return rec, err
}

// walMeta pins the parts of the configuration baked into the on-disk
// layout. The partition count decides which log a probe's records land
// in, so reopening with a different count would silently break the
// per-probe ordering recovery depends on — it is refused instead. (The
// field is named "shards" for compatibility with pre-cluster layouts,
// where the shard count WAS the partition count; it has always meant
// the routing modulus.)
type walMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const (
	walMetaFile    = "ingest.json"
	walMetaVersion = 1
)

func checkWALMeta(dir string, shards int) error {
	path := filepath.Join(dir, walMetaFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data, err := json.Marshal(walMeta{Version: walMetaVersion, Shards: shards})
		if err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, path); err != nil {
			return err
		}
		return syncDir(dir)
	}
	if err != nil {
		return err
	}
	var m walMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("stream: corrupt WAL metadata %s: %w", path, err)
	}
	if m.Version != walMetaVersion {
		return fmt.Errorf("stream: WAL metadata version %d, want %d", m.Version, walMetaVersion)
	}
	if m.Shards != shards {
		return fmt.Errorf("stream: WAL directory laid out for %d partitions, config wants %d (repartitioning an existing WAL is not supported)", m.Shards, shards)
	}
	return nil
}

// DiscoverPartitions scans a WAL directory for shard-NNN subdirectories
// and returns the sorted partition IDs found — the partitions a
// restarting cluster peer owns on disk, which take precedence over any
// ring-derived assignment (a partition may have been adopted or
// released since the peer's flags were written). A missing or empty
// directory returns (nil, nil): the caller falls back to its configured
// assignment. Directories renamed aside by ReleasePartition
// (shard-NNN.released) are not partitions and are skipped.
func DiscoverPartitions(walDir string) ([]int, error) {
	entries, err := os.ReadDir(walDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) != len("shard-000") || name[:len("shard-")] != "shard-" {
			continue
		}
		p, err := strconv.Atoi(name[len("shard-"):])
		if err != nil || p < 0 {
			continue
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out, nil
}

// RecoverStats summarises what Recover reconstructed.
type RecoverStats struct {
	// Shards is the shard count of the recovered ingester.
	Shards int `json:"shards"`
	// CheckpointProbes counts probe states restored from checkpoints.
	CheckpointProbes int `json:"checkpoint_probes"`
	// Replayed counts WAL records re-applied past the checkpoints.
	Replayed int64 `json:"replayed"`
}

// Recover opens a durable ingester rooted at cfg.WALDir, rebuilding
// each shard from its latest checkpoint plus its WAL tail. A fresh
// directory starts empty, so Recover is also the constructor for new
// durable ingesters. The reconstructed state is byte-identical (in
// Snapshot terms) to an uninterrupted run over the same durable record
// prefix: checkpoints round-trip floats exactly, and WAL replay drives
// the same deterministic state machines the live path uses. Damaged WAL
// tails (torn frames, bit flips) are truncated to the last valid
// record, never fatal; use Cursor to learn each probe's durable prefix
// and resume producers from there.
func Recover(cfg Config) (*Ingester, *RecoverStats, error) {
	cfg = cfg.withDefaults()
	if cfg.WALDir == "" {
		return nil, nil, errors.New("stream: Recover requires Config.WALDir")
	}
	if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := checkWALMeta(cfg.WALDir, cfg.TotalPartitions); err != nil {
		return nil, nil, err
	}
	in := newIngester(cfg)
	st := &RecoverStats{Shards: len(in.shards)}
	for _, s := range in.shards {
		if err := recoverShard(s, cfg, st); err != nil {
			for _, prev := range in.shards {
				if prev.log != nil {
					prev.log.Close()
				}
			}
			return nil, nil, fmt.Errorf("stream: recovering shard %d: %w", s.index, err)
		}
	}
	in.start()
	return in, st, nil
}

// recoverShard restores one shard: checkpoint, then WAL tail.
func recoverShard(s *shard, cfg Config, st *RecoverStats) error {
	s.dir = filepath.Join(cfg.WALDir, fmt.Sprintf("shard-%03d", s.index))
	s.ckptEvery = cfg.CheckpointEvery
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}

	ck, err := loadCheckpoint(s.dir)
	if err != nil {
		return err
	}
	from := uint64(1)
	if ck != nil {
		s.restoreCheckpoint(ck)
		from = ck.Seq + 1
		st.CheckpointProbes += len(ck.Probes)
	}

	opt := wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		Sync:         cfg.Sync,
		Metrics:      wal.NewMetrics(cfg.Metrics, strconv.Itoa(s.index)),
		FS:           cfg.FS,
	}
	// Keep the FirstSeq-free base options: degraded-mode re-arm and the
	// lazy dead-letter log reopen with exactly these.
	s.walOpt = opt
	log, err := wal.Open(s.dir, opt)
	if err != nil {
		return err
	}
	if log.NextSeq() < from {
		// The surviving log ends before the checkpoint: every frame in it
		// is already covered by the checkpoint (the checkpoint synced the
		// log before being written), so reset the log to start just past
		// the checkpoint instead of replaying stale history.
		if err := log.Close(); err != nil {
			return err
		}
		opt.FirstSeq = from
		if log, err = wal.Open(s.dir, opt); err != nil {
			return err
		}
	}

	err = wal.Replay(s.dir, from, func(seq uint64, payload []byte) error {
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("WAL seq %d: %w", seq, err)
		}
		s.apply(rec)
		s.sinceCkpt++
		st.Replayed++
		s.metrics.replayedRecord()
		return nil
	})
	if err != nil {
		log.Close()
		return err
	}
	s.metrics.flush()
	s.log = log
	s.lastSeq = log.NextSeq() - 1
	return nil
}
