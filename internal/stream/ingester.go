package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/pfx2as"
)

// ErrClosed is returned by ingest calls after Close.
var ErrClosed = errors.New("stream: ingester closed")

type recordKind uint8

const (
	kindMeta recordKind = iota
	kindConn
	kindKRoot
	kindUptime
	kindSnapshot
)

// record is the envelope travelling through a shard's channel. Exactly
// one payload field is meaningful, selected by kind.
type record struct {
	kind   recordKind
	meta   atlasdata.ProbeMeta
	conn   atlasdata.ConnLogEntry
	kroot  atlasdata.KRootRound
	uptime atlasdata.UptimeRecord
	snap   chan<- *shardView
}

// shard owns the state machines for a subset of probes. Only the
// shard's goroutine touches its fields after start-up, so no locking is
// needed on the hot path; coordination happens through the channel.
type shard struct {
	in     chan record
	states map[atlasdata.ProbeID]*probeState
	// sessionsByAS counts observed IPv4 sessions by the origin AS of the
	// session's address at its start — the raw live-traffic view, kept
	// incrementally (unlike the snapshot-time home-AS aggregation).
	sessionsByAS map[uint32]int64
	counts       RecordCounts
	pfx          *pfx2as.SnapshotStore
}

// RecordCounts tallies what an ingester (or one shard) has processed.
type RecordCounts struct {
	Meta     int64 `json:"meta"`
	ConnLogs int64 `json:"connlogs"`
	KRoot    int64 `json:"kroot"`
	Uptime   int64 `json:"uptime"`
	// Rejected counts records dropped for violating per-probe time order
	// or failing validation inside the shard.
	Rejected int64 `json:"rejected"`
}

// Total returns the number of accepted records.
func (c RecordCounts) Total() int64 { return c.Meta + c.ConnLogs + c.KRoot + c.Uptime }

func (c *RecordCounts) add(o RecordCounts) {
	c.Meta += o.Meta
	c.ConnLogs += o.ConnLogs
	c.KRoot += o.KRoot
	c.Uptime += o.Uptime
	c.Rejected += o.Rejected
}

// Ingester accepts the three record streams plus probe metadata and
// maintains incremental analysis state across N probe-hashed shards.
// All ingest methods are safe for concurrent use; records for one probe
// must arrive in time order (per stream), which the per-probe shard
// affinity preserves end to end.
type Ingester struct {
	cfg    Config
	shards []*shard

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewIngester starts the shard goroutines and returns a ready ingester.
// Call Close to drain and stop them.
func NewIngester(cfg Config) *Ingester {
	cfg = cfg.withDefaults()
	in := &Ingester{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range in.shards {
		s := &shard{
			in:           make(chan record, cfg.Buffer),
			states:       make(map[atlasdata.ProbeID]*probeState),
			sessionsByAS: make(map[uint32]int64),
			pfx:          cfg.Pfx2AS,
		}
		in.shards[i] = s
		in.wg.Add(1)
		go func() {
			defer in.wg.Done()
			s.run()
		}()
	}
	return in
}

// Shards returns the shard count the ingester runs with.
func (in *Ingester) Shards() int { return len(in.shards) }

// shardFor hashes a probe ID onto its owning shard.
func (in *Ingester) shardFor(id atlasdata.ProbeID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return in.shards[h%uint64(len(in.shards))]
}

// send routes one record, blocking while the target shard's buffer is
// full — the backpressure that keeps a slow shard from being buried.
// Cancelling ctx releases a blocked producer instead of leaving it
// stuck behind the full buffer.
func (in *Ingester) send(ctx context.Context, id atlasdata.ProbeID, rec record) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	select {
	case in.shardFor(id).in <- rec:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Meta registers (or refreshes) a probe's archive metadata. Records for
// unregistered probes are tracked but stay out of the classified
// aggregates until metadata arrives.
func (in *Ingester) Meta(m atlasdata.ProbeMeta) error {
	return in.MetaContext(context.Background(), m)
}

// MetaContext is Meta under a context: a blocked send returns ctx.Err()
// on cancellation instead of waiting out the backpressure.
func (in *Ingester) MetaContext(ctx context.Context, m atlasdata.ProbeMeta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return in.send(ctx, m.ID, record{kind: kindMeta, meta: m})
}

// ConnLog ingests one connection-log entry.
func (in *Ingester) ConnLog(e atlasdata.ConnLogEntry) error {
	return in.ConnLogContext(context.Background(), e)
}

// ConnLogContext is ConnLog under a context (see MetaContext).
func (in *Ingester) ConnLogContext(ctx context.Context, e atlasdata.ConnLogEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	return in.send(ctx, e.Probe, record{kind: kindConn, conn: e})
}

// KRoot ingests one k-root measurement round.
func (in *Ingester) KRoot(k atlasdata.KRootRound) error {
	return in.KRootContext(context.Background(), k)
}

// KRootContext is KRoot under a context (see MetaContext).
func (in *Ingester) KRootContext(ctx context.Context, k atlasdata.KRootRound) error {
	if err := k.Validate(); err != nil {
		return err
	}
	return in.send(ctx, k.Probe, record{kind: kindKRoot, kroot: k})
}

// Uptime ingests one SOS-uptime record.
func (in *Ingester) Uptime(u atlasdata.UptimeRecord) error {
	return in.UptimeContext(context.Background(), u)
}

// UptimeContext is Uptime under a context (see MetaContext).
func (in *Ingester) UptimeContext(ctx context.Context, u atlasdata.UptimeRecord) error {
	if err := u.Validate(); err != nil {
		return err
	}
	return in.send(ctx, u.Probe, record{kind: kindUptime, uptime: u})
}

// Snapshot returns a consistent point-in-time view of the analysis
// state: it reflects at least every record whose ingest call returned
// before Snapshot was called (snapshot markers travel in-band through
// the shard channels), plus possibly a bounded number of records that
// were in flight.
func (in *Ingester) Snapshot() *Snapshot {
	in.mu.RLock()
	if !in.closed {
		ch := make(chan *shardView, len(in.shards))
		for _, s := range in.shards {
			s.in <- record{kind: kindSnapshot, snap: ch}
		}
		in.mu.RUnlock()
		views := make([]*shardView, 0, len(in.shards))
		for range in.shards {
			views = append(views, <-ch)
		}
		return mergeViews(views, len(in.shards))
	}
	in.mu.RUnlock()
	// After Close the shard goroutines have exited; their state is
	// quiescent and safe to read directly.
	views := make([]*shardView, 0, len(in.shards))
	for _, s := range in.shards {
		views = append(views, s.view())
	}
	return mergeViews(views, len(in.shards))
}

// Close stops accepting records, drains every shard's queue, and waits
// for the shard goroutines to exit. Snapshot remains usable afterwards.
// Close is idempotent.
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	in.closed = true
	for _, s := range in.shards {
		close(s.in)
	}
	in.mu.Unlock()
	in.wg.Wait()
	return nil
}

// run is the shard goroutine: drain the channel, drive state machines.
func (s *shard) run() {
	for rec := range s.in {
		switch rec.kind {
		case kindMeta:
			s.state(rec.meta.ID).setMeta(rec.meta)
			s.counts.Meta++
		case kindConn:
			ps := s.state(rec.conn.Probe)
			if ps.onConn(rec.conn, s.pfx) {
				s.counts.ConnLogs++
				if rec.conn.IsV4() && s.pfx != nil {
					asn, _, _ := s.pfx.Lookup(rec.conn.Addr, rec.conn.Start)
					s.sessionsByAS[uint32(asn)]++
				}
			} else {
				s.counts.Rejected++
			}
		case kindKRoot:
			if s.state(rec.kroot.Probe).onKRoot(rec.kroot) {
				s.counts.KRoot++
			} else {
				s.counts.Rejected++
			}
		case kindUptime:
			if s.state(rec.uptime.Probe).onUptime(rec.uptime) {
				s.counts.Uptime++
			} else {
				s.counts.Rejected++
			}
		case kindSnapshot:
			rec.snap <- s.view()
		}
	}
}

func (s *shard) state(id atlasdata.ProbeID) *probeState {
	ps, ok := s.states[id]
	if !ok {
		ps = newProbeState(id)
		s.states[id] = ps
	}
	return ps
}

// view copies the shard's aggregation-relevant state. Called from the
// shard goroutine (in-band snapshot) or after Close (quiescent).
func (s *shard) view() *shardView {
	v := &shardView{counts: s.counts}
	v.sessionsByAS = make(map[uint32]int64, len(s.sessionsByAS))
	for asn, n := range s.sessionsByAS {
		v.sessionsByAS[asn] = n
	}
	v.probes = make([]probeSummary, 0, len(s.states))
	ids := make([]atlasdata.ProbeID, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v.probes = append(v.probes, s.states[id].summarize())
	}
	return v
}

// String describes the ingester for logs.
func (in *Ingester) String() string {
	return fmt.Sprintf("stream.Ingester{shards: %d, buffer: %d}", in.cfg.Shards, in.cfg.Buffer)
}
