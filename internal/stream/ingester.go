package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/obs"
	"dynaddr/internal/pfx2as"
	"dynaddr/internal/wal"
)

// ErrClosed is returned by ingest calls after Close.
var ErrClosed = errors.New("stream: ingester closed")

// ErrDegraded is returned by ingest calls routed to a shard that is in
// degraded read-only mode after a WAL failure: the shard serves queries
// but sheds writes until its background probe re-arms the log. Callers
// should retry after a pause (the HTTP layer maps this to 503 +
// Retry-After).
var ErrDegraded = errors.New("stream: shard degraded after WAL failure, retry later")

// ErrNotOwner is returned by ingest and cursor calls for a probe whose
// partition this ingester does not own. A single-node ingester owns
// every partition and never returns it; a cluster peer returns it for
// records the coordinator should have routed elsewhere (the HTTP layer
// maps this to 421 Misdirected Request).
var ErrNotOwner = errors.New("stream: probe's partition not owned by this node")

// PartitionOf hashes a probe ID onto one of total partitions. It is THE
// routing function: producers, coordinator and peers must all agree on
// it, and it is deliberately dependency-free so internal/cluster can
// reuse it. The multiplier is the 64-bit golden ratio (Fibonacci
// hashing); the shift folds high bits into the modulus.
func PartitionOf(id atlasdata.ProbeID, total int) int {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h % uint64(total))
}

type recordKind uint8

const (
	kindMeta recordKind = iota
	kindConn
	kindKRoot
	kindUptime
	kindSnapshot
	kindCursor
	// kindAnalysis must stay after the WAL-persisted kinds: marker kinds
	// never reach the log, but keeping them last means the byte values of
	// persisted kinds never shift when markers are added.
	kindAnalysis
	// kindQuarantine carries an API-layer dead-letter entry in-band to
	// the probe's shard, which owns the quarantine log. Never persisted
	// to the main WAL.
	kindQuarantine
)

// record is the envelope travelling through a shard's channel. Exactly
// one payload field is meaningful, selected by kind.
type record struct {
	kind     recordKind
	meta     atlasdata.ProbeMeta
	conn     atlasdata.ConnLogEntry
	kroot    atlasdata.KRootRound
	uptime   atlasdata.UptimeRecord
	snap     chan<- *shardView
	probe    atlasdata.ProbeID    // kindCursor: which probe
	cur      chan<- cursorReply   // kindCursor: reply channel
	analysis chan<- *analysisView // kindAnalysis: reply channel
	q        *quarantineRecord    // kindQuarantine: the dead-letter entry
}

// cursorReply pairs a probe cursor with the owning shard's stream
// position at the barrier, so cursor responses can carry cache
// validators without a second round trip.
type cursorReply struct {
	cur ProbeCursor
	ver Version
}

// shard owns the state machines for a subset of probes. Only the
// shard's goroutine touches its fields after start-up (walErr excepted,
// see errMu), so no locking is needed on the hot path; coordination
// happens through the channel.
type shard struct {
	in     chan record
	states map[atlasdata.ProbeID]*probeState
	// sessionsByAS counts observed IPv4 sessions by the origin AS of the
	// session's address at its start — the raw live-traffic view, kept
	// incrementally (unlike the snapshot-time home-AS aggregation).
	sessionsByAS map[uint32]int64
	counts       RecordCounts
	pfx          *pfx2as.SnapshotStore
	// churn is the shard's day-bucketed address-change table, shared by
	// every probe the shard owns (churn has no per-probe dimension —
	// the counters are integer sums, so per-shard accumulation merges
	// exactly). Nil when analysis is off; doubles as the analysis-mode
	// flag for new probe states, which get detectors iff it is set.
	churn *liveanalysis.ChurnTable

	// index is the shard's global partition ID — part of the on-disk
	// identity of a durable shard (WAL directory shard-NNN) and stable
	// across the whole cluster, not the shard's position in
	// Ingester.shards. Single-node, the two coincide.
	index int

	// done is closed when run() returns; ReleasePartition waits on it to
	// know the shard is quiescent and its logs are closed.
	done chan struct{}

	// Durability (nil/zero for an in-memory ingester). The shard appends
	// every record to its log before applying it, so the log holds a
	// superset of the applied state in per-probe order.
	log       *wal.Log
	dir       string
	ckptEvery int
	sinceCkpt int
	lastSeq   uint64 // sequence of the last appended record
	// gen counts the shard's completed checkpoints (restored from the
	// checkpoint document on recovery). Together with the consumed-record
	// count it forms the shard's Version — the serving tier's cache key.
	// An in-memory shard never checkpoints and stays at generation 0.
	gen uint64

	// metrics is nil when instrumentation is disabled; all its methods
	// are nil-receiver safe. ametrics is the analysis-barrier slice of
	// the instrumentation, also nil-safe and touched only at barriers.
	metrics  *shardMetrics
	ametrics *analysisMetrics
	// reg is the raw registry for cold-path instruments (dead-letter
	// counters); nil when instrumentation is disabled.
	reg *obs.Registry

	// Degraded mode: a durability error (append, fsync, rotation,
	// checkpoint) flips the shard read-only instead of killing it.
	// Queries keep answering from memory, new writes are shed at send()
	// with ErrDegraded, and records already queued are parked. The run
	// loop probes the WAL directory every rearmEvery; once writes
	// succeed again it reopens the log (repairing any torn tail the
	// failed append left), flushes the parked records in arrival order,
	// and clears the flag. The acked⇒durable contract is unchanged: a
	// record is only acknowledged once appended, so nothing acked is
	// ever lost to the degraded window.
	degraded   atomic.Bool
	parked     []record
	walOpt     wal.Options // reopen options for the re-arm path
	rearmEvery time.Duration

	// dl is the shard's dead-letter quarantine state (counts, samples,
	// lazy durable log).
	dl dlState

	// walErr is the shard's current durability error: set when the
	// shard degrades (or its log fails to close), cleared by a
	// successful re-arm. Reported by WALError and Close.
	errMu  sync.Mutex
	walErr error
}

func (s *shard) setWALErr(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	if s.walErr == nil {
		s.walErr = err
	}
	s.errMu.Unlock()
}

func (s *shard) walError() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.walErr
}

// degrade flips the shard into read-only degraded mode.
func (s *shard) degrade(err error) {
	s.errMu.Lock()
	s.walErr = err
	s.errMu.Unlock()
	s.degraded.Store(true)
}

// tryRearm probes the WAL directory and, if it takes durable writes
// again, reopens the log and flushes the parked records through the
// normal append-before-apply path. Runs on the shard goroutine.
func (s *shard) tryRearm() {
	if s.log == nil || !s.degraded.Load() {
		return
	}
	if err := wal.ProbeWrite(s.walOpt.FS, s.dir); err != nil {
		return
	}
	// The old handle is broken (mid-frame, failed fd, or unsynced);
	// reopening repairs the torn tail and resumes at the last durable
	// sequence, exactly like crash recovery.
	s.log.Close()
	log, err := wal.Open(s.dir, s.walOpt)
	if err != nil {
		return
	}
	s.log = log
	s.lastSeq = log.NextSeq() - 1
	s.errMu.Lock()
	s.walErr = nil
	s.errMu.Unlock()
	s.degraded.Store(false)

	parked := s.parked
	s.parked = nil
	for i, rec := range parked {
		s.ingestOne(rec)
		if s.degraded.Load() {
			// Re-degraded mid-flush: ingestOne re-parked rec; keep the rest
			// behind it in order.
			s.parked = append(s.parked, parked[i+1:]...)
			return
		}
	}
}

// RecordCounts tallies what an ingester (or one shard) has processed.
type RecordCounts struct {
	Meta     int64 `json:"meta"`
	ConnLogs int64 `json:"connlogs"`
	KRoot    int64 `json:"kroot"`
	Uptime   int64 `json:"uptime"`
	// Rejected counts records dropped for violating per-probe time order
	// or failing validation inside the shard.
	Rejected int64 `json:"rejected"`
}

// Total returns the number of accepted records.
func (c RecordCounts) Total() int64 { return c.Meta + c.ConnLogs + c.KRoot + c.Uptime }

func (c *RecordCounts) add(o RecordCounts) {
	c.Meta += o.Meta
	c.ConnLogs += o.ConnLogs
	c.KRoot += o.KRoot
	c.Uptime += o.Uptime
	c.Rejected += o.Rejected
}

// Ingester accepts the three record streams plus probe metadata and
// maintains incremental analysis state across N probe-hashed shards.
// All ingest methods are safe for concurrent use; records for one probe
// must arrive in time order (per stream), which the per-probe shard
// affinity preserves end to end.
type Ingester struct {
	cfg   Config
	total int // cluster-wide partition count (hash modulus)

	// mu guards shards, table and closed. shards and table are replaced
	// wholesale (copy-on-write) by ReleasePartition/AdoptPartition, so a
	// reader that copies the slice header under RLock can keep using it
	// after unlocking.
	mu     sync.RWMutex
	shards []*shard
	table  []int32 // partition → index into shards, -1 when unowned
	closed bool
	wg     sync.WaitGroup
}

// NewIngester starts the shard goroutines and returns a ready ingester.
// Call Close to drain and stop them. With Config.WALDir set it opens
// (and, if needed, recovers) the durable ingester and panics on
// recovery failure; call Recover directly to handle that error.
func NewIngester(cfg Config) *Ingester {
	cfg = cfg.withDefaults()
	if cfg.WALDir != "" {
		in, _, err := Recover(cfg)
		if err != nil {
			panic(fmt.Sprintf("stream: durable NewIngester: %v", err))
		}
		return in
	}
	in := newIngester(cfg)
	in.start()
	return in
}

// newIngester allocates the ingester and its shards without starting
// the shard goroutines (Recover restores shard state in between).
func newIngester(cfg Config) *Ingester {
	owned := cfg.OwnedPartitions
	if owned == nil {
		owned = make([]int, cfg.Shards)
		for i := range owned {
			owned[i] = i
		}
	}
	in := &Ingester{cfg: cfg, total: cfg.TotalPartitions, shards: make([]*shard, len(owned))}
	for i, p := range owned {
		if p < 0 || p >= in.total {
			panic(fmt.Sprintf("stream: owned partition %d outside [0, %d)", p, in.total))
		}
		in.shards[i] = in.newShard(p)
	}
	in.rebuildTable()
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("wal_degraded_shards",
			"Shards in degraded read-only mode after a WAL failure, pending re-arm.",
			func() float64 {
				in.mu.RLock()
				shards := in.shards
				in.mu.RUnlock()
				n := 0
				for _, s := range shards {
					if s.degraded.Load() {
						n++
					}
				}
				return float64(n)
			})
	}
	return in
}

// newShard builds one shard for global partition p, wired but not
// running.
func (in *Ingester) newShard(p int) *shard {
	cfg := in.cfg
	s := &shard{
		index:        p,
		in:           make(chan record, cfg.Buffer),
		done:         make(chan struct{}),
		states:       make(map[atlasdata.ProbeID]*probeState),
		sessionsByAS: make(map[uint32]int64),
		pfx:          cfg.Pfx2AS,
		metrics:      newShardMetrics(cfg.Metrics, p),
		reg:          cfg.Metrics,
		rearmEvery:   cfg.RearmEvery,
	}
	if cfg.Analysis {
		s.churn = &liveanalysis.ChurnTable{}
		s.ametrics = newAnalysisMetrics(cfg.Metrics, p)
	}
	registerQueueDepth(cfg.Metrics, p, s.in)
	return s
}

// rebuildTable recomputes the partition → shard routing table. Caller
// holds mu (or is single-threaded construction).
func (in *Ingester) rebuildTable() {
	table := make([]int32, in.total)
	for i := range table {
		table[i] = -1
	}
	for i, s := range in.shards {
		table[s.index] = int32(i)
	}
	in.table = table
}

// start launches one goroutine per shard.
func (in *Ingester) start() {
	for _, s := range in.shards {
		in.startShard(s)
	}
}

func (in *Ingester) startShard(s *shard) {
	in.wg.Add(1)
	go func() {
		defer in.wg.Done()
		defer close(s.done)
		s.run()
	}()
}

// Shards returns the number of shards the ingester currently runs —
// the partitions it owns, which single-node is all of them.
func (in *Ingester) Shards() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.shards)
}

// TotalPartitions returns the cluster-wide partition count records are
// hashed over. Single-node it equals Shards().
func (in *Ingester) TotalPartitions() int { return in.total }

// OwnedPartitions returns the sorted partition IDs this ingester
// currently owns.
func (in *Ingester) OwnedPartitions() []int {
	in.mu.RLock()
	shards := in.shards
	in.mu.RUnlock()
	out := make([]int, 0, len(shards))
	for _, s := range shards {
		out = append(out, s.index)
	}
	sort.Ints(out)
	return out
}

// shardFor maps a probe ID to its owning local shard, or nil when the
// probe's partition is not owned here. Caller holds mu (read side).
func (in *Ingester) shardFor(id atlasdata.ProbeID) *shard {
	if li := in.table[PartitionOf(id, in.total)]; li >= 0 {
		return in.shards[li]
	}
	return nil
}

// send routes one record, blocking while the target shard's buffer is
// full — the backpressure that keeps a slow shard from being buried.
// Cancelling ctx releases a blocked producer instead of leaving it
// stuck behind the full buffer.
func (in *Ingester) send(ctx context.Context, id atlasdata.ProbeID, rec record) error {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	s := in.shardFor(id)
	if s == nil {
		return ErrNotOwner
	}
	if s.degraded.Load() {
		// The shard is read-only until its WAL re-arms: shed instead of
		// queueing work it could only park. (A record that slips past this
		// check while the shard degrades is parked and flushed on re-arm,
		// so the acked⇒durable contract holds either way.)
		return ErrDegraded
	}
	select {
	case s.in <- rec:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Meta registers (or refreshes) a probe's archive metadata. Records for
// unregistered probes are tracked but stay out of the classified
// aggregates until metadata arrives.
func (in *Ingester) Meta(m atlasdata.ProbeMeta) error {
	return in.MetaContext(context.Background(), m)
}

// MetaContext is Meta under a context: a blocked send returns ctx.Err()
// on cancellation instead of waiting out the backpressure.
func (in *Ingester) MetaContext(ctx context.Context, m atlasdata.ProbeMeta) error {
	if err := m.Validate(); err != nil {
		return err
	}
	return in.send(ctx, m.ID, record{kind: kindMeta, meta: m})
}

// ConnLog ingests one connection-log entry.
func (in *Ingester) ConnLog(e atlasdata.ConnLogEntry) error {
	return in.ConnLogContext(context.Background(), e)
}

// ConnLogContext is ConnLog under a context (see MetaContext).
func (in *Ingester) ConnLogContext(ctx context.Context, e atlasdata.ConnLogEntry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	return in.send(ctx, e.Probe, record{kind: kindConn, conn: e})
}

// KRoot ingests one k-root measurement round.
func (in *Ingester) KRoot(k atlasdata.KRootRound) error {
	return in.KRootContext(context.Background(), k)
}

// KRootContext is KRoot under a context (see MetaContext).
func (in *Ingester) KRootContext(ctx context.Context, k atlasdata.KRootRound) error {
	if err := k.Validate(); err != nil {
		return err
	}
	return in.send(ctx, k.Probe, record{kind: kindKRoot, kroot: k})
}

// Uptime ingests one SOS-uptime record.
func (in *Ingester) Uptime(u atlasdata.UptimeRecord) error {
	return in.UptimeContext(context.Background(), u)
}

// UptimeContext is Uptime under a context (see MetaContext).
func (in *Ingester) UptimeContext(ctx context.Context, u atlasdata.UptimeRecord) error {
	if err := u.Validate(); err != nil {
		return err
	}
	return in.send(ctx, u.Probe, record{kind: kindUptime, uptime: u})
}

// Snapshot returns a consistent point-in-time view of the analysis
// state: it reflects at least every record whose ingest call returned
// before Snapshot was called (snapshot markers travel in-band through
// the shard channels), plus possibly a bounded number of records that
// were in flight.
func (in *Ingester) Snapshot() *Snapshot {
	snap, _ := in.SnapshotContext(context.Background())
	return snap
}

// SnapshotContext is Snapshot under a context: a caller blocked behind
// full shard buffers (or behind a shard stalled in an fsync) gets
// ctx.Err() on cancellation instead of hanging. The error is always
// ctx.Err(); a nil-error return carries the snapshot.
func (in *Ingester) SnapshotContext(ctx context.Context) (*Snapshot, error) {
	views, err := in.collectViews(ctx)
	if err != nil {
		return nil, err
	}
	return mergeViews(views, in.total), nil
}

// collectViews gathers one consistent shardView per owned shard via the
// in-band snapshot barrier (or directly once closed).
func (in *Ingester) collectViews(ctx context.Context) ([]*shardView, error) {
	in.mu.RLock()
	shards := in.shards
	if in.closed {
		in.mu.RUnlock()
		// After Close the shard goroutines have exited; their state is
		// quiescent and safe to read directly.
		views := make([]*shardView, 0, len(shards))
		for _, s := range shards {
			views = append(views, s.view())
		}
		return views, nil
	}
	// ch is buffered to the full shard count so markers already sent keep
	// a reply slot even if we abandon the collection on cancellation —
	// no shard goroutine ever blocks on a dead snapshot.
	ch := make(chan *shardView, len(shards))
	for _, s := range shards {
		select {
		case s.in <- record{kind: kindSnapshot, snap: ch}:
		case <-ctx.Done():
			in.mu.RUnlock()
			return nil, ctx.Err()
		}
	}
	in.mu.RUnlock()
	views := make([]*shardView, 0, len(shards))
	for range shards {
		select {
		case v := <-ch:
			views = append(views, v)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return views, nil
}

// Cursor returns a probe's resume cursor: how many records of each
// kind the ingester has consumed for that probe. Like a snapshot it
// travels in-band, so it reflects every record whose ingest call
// returned before Cursor was called. After a crash and Recover, the
// cursor describes exactly the durable prefix of the probe's stream —
// a producer resumes by skipping that many records per kind.
func (in *Ingester) Cursor(ctx context.Context, id atlasdata.ProbeID) (ProbeCursor, error) {
	c, _, err := in.CursorVersioned(ctx, id)
	return c, err
}

// CursorVersioned is Cursor plus the owning shard's stream position at
// the barrier. The version validates conditional GETs of the cursor
// endpoint: it is shard-local (only records routed to the probe's shard
// advance it), so a changed version is necessary for — though not proof
// of — a changed cursor, which is exactly the one-sided guarantee an
// ETag needs. Cursors are never served from the cached read tier: a
// stale cursor would make a resuming producer re-send already-applied
// records.
func (in *Ingester) CursorVersioned(ctx context.Context, id atlasdata.ProbeID) (ProbeCursor, Version, error) {
	in.mu.RLock()
	s := in.shardFor(id)
	if s == nil {
		closed := in.closed
		in.mu.RUnlock()
		if closed {
			return ProbeCursor{}, Version{}, ErrClosed
		}
		return ProbeCursor{}, Version{}, ErrNotOwner
	}
	if in.closed {
		in.mu.RUnlock()
		return s.cursor(id), s.version(), nil
	}
	ch := make(chan cursorReply, 1)
	select {
	case s.in <- record{kind: kindCursor, probe: id, cur: ch}:
	case <-ctx.Done():
		in.mu.RUnlock()
		return ProbeCursor{}, Version{}, ctx.Err()
	}
	in.mu.RUnlock()
	select {
	case r := <-ch:
		return r.cur, r.ver, nil
	case <-ctx.Done():
		return ProbeCursor{}, Version{}, ctx.Err()
	}
}

// WALError reports the current durability failure any shard is
// suffering, or nil. A failing shard degrades to read-only — queries
// keep answering, ingest to it sheds with ErrDegraded — and a
// background probe re-arms it once writes succeed again, clearing the
// error. The WAL therefore always covers the applied state: records
// are only applied after their append succeeds.
func (in *Ingester) WALError() error {
	in.mu.RLock()
	shards := in.shards
	in.mu.RUnlock()
	for _, s := range shards {
		if err := s.walError(); err != nil {
			return err
		}
	}
	return nil
}

// DegradedShards lists the indexes of shards currently in degraded
// read-only mode, oldest index first. Empty means fully healthy.
func (in *Ingester) DegradedShards() []int {
	in.mu.RLock()
	shards := in.shards
	in.mu.RUnlock()
	var out []int
	for _, s := range shards {
		if s.degraded.Load() {
			out = append(out, s.index)
		}
	}
	sort.Ints(out)
	return out
}

// QueuePressure returns the fullest shard queue as a fraction of its
// capacity, in [0, 1]. It is the end-to-end backpressure signal: the
// admission layer sheds new batches with 429 once it crosses the
// configured high-watermark, instead of letting producers pile up
// behind a slow shard.
func (in *Ingester) QueuePressure() float64 {
	in.mu.RLock()
	shards := in.shards
	in.mu.RUnlock()
	p := 0.0
	for _, s := range shards {
		if c := cap(s.in); c > 0 {
			if f := float64(len(s.in)) / float64(c); f > p {
				p = f
			}
		}
	}
	return p
}

// Close stops accepting records, drains every shard's queue, syncs and
// closes the shard WALs, and waits for the shard goroutines to exit.
// Snapshot remains usable afterwards. Close is idempotent; it returns
// the first durability error encountered during the ingester's life,
// if any. It deliberately does not checkpoint: recovery must never
// depend on a clean shutdown.
func (in *Ingester) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return in.WALError()
	}
	in.closed = true
	for _, s := range in.shards {
		close(s.in)
	}
	in.mu.Unlock()
	in.wg.Wait()
	return in.WALError()
}

// run is the shard goroutine: drain the channel, persist, then drive
// the state machines. The append-before-apply order is the durability
// contract — the WAL always holds a superset of the applied records,
// in per-probe arrival order. While degraded the loop keeps serving
// markers (queries stay up) and wakes every rearmEvery to probe the
// WAL directory for recovered writability.
func (s *shard) run() {
	for {
		var (
			rec record
			ok  bool
		)
		if s.degraded.Load() && s.rearmEvery > 0 {
			timer := time.NewTimer(s.rearmEvery)
			select {
			case rec, ok = <-s.in:
				timer.Stop()
			case <-timer.C:
				s.tryRearm()
				continue
			}
		} else {
			rec, ok = <-s.in
		}
		if !ok {
			break
		}
		switch rec.kind {
		case kindSnapshot:
			// The snapshot barrier is also the metrics barrier: a scrape
			// after a snapshot sees counters that exactly match it.
			s.metrics.flush()
			rec.snap <- s.view()
			continue
		case kindCursor:
			rec.cur <- cursorReply{cur: s.cursor(rec.probe), ver: s.version()}
			continue
		case kindAnalysis:
			// Like snapshots, the analysis barrier is a metrics barrier.
			s.metrics.flush()
			v := s.analysisView()
			s.ametrics.observe(v)
			rec.analysis <- v
			continue
		}
		if s.degraded.Load() && rec.kind != kindQuarantine {
			// In-flight records that raced the degrade: park them, bounded
			// by the channel capacity, and flush them on re-arm.
			s.parked = append(s.parked, rec)
			continue
		}
		s.ingestOne(rec)
	}
	// Last chance to land parked records before the logs close.
	if s.degraded.Load() {
		s.tryRearm()
	}
	s.metrics.flush()
	if s.log != nil && !s.degraded.Load() {
		s.setWALErr(s.log.Close())
	} else if s.log != nil {
		s.log.Close()
	}
	if s.dl.log != nil {
		s.dl.log.Close()
	}
}

// ingestOne persists and applies one data or quarantine record. An
// append failure degrades the shard and parks the record — it is
// applied only once its bytes are in the log, so recovery never
// diverges from the live state.
func (s *shard) ingestOne(rec record) {
	if rec.kind == kindQuarantine {
		s.quarantine(rec.q.entry)
		return
	}
	if s.log != nil {
		payload, err := encodeRecord(rec)
		if err != nil {
			// A record that cannot be encoded is poison, not a disk
			// problem: dead-letter it and move on without applying (it
			// could never be recovered from the WAL).
			s.quarantineRejected(rec, "encode", err.Error())
			return
		}
		seq, err := s.log.Append(payload)
		if err != nil {
			s.degrade(err)
			s.parked = append(s.parked, rec)
			return
		}
		s.lastSeq = seq
	}
	// Apply-time order rejections are counted and dropped, NOT
	// quarantined: under at-least-once delivery a resumed producer
	// legitimately re-sends already-applied records, and dead-lettering
	// every stale duplicate would bury real poison records (and put an
	// encode+append on the steady-state redelivery path).
	s.apply(rec)
	s.maybeCheckpoint()
}

// applyResult says whether apply accepted the record into the
// aggregates or rejected it (time order, in-shard validation).
type applyResult uint8

const (
	applyOK applyResult = iota
	applyRejected
)

// apply drives one record through its probe's state machines. Recovery
// replays WAL records through this same function, so everything here
// must be deterministic in the record sequence — which is why the
// dead-letter side effects of a rejection live in the caller (replay
// ignores the result instead of re-quarantining).
func (s *shard) apply(rec record) applyResult {
	res := applyOK
	t0, timed := s.metrics.sampleStart()
	switch rec.kind {
	case kindMeta:
		ps := s.state(rec.meta.ID)
		ps.metaCount++
		ps.setMeta(rec.meta)
		s.counts.Meta++
		s.metrics.accept(kindMeta)
	case kindConn:
		ps := s.state(rec.conn.Probe)
		ps.connCount++
		if ps.onConn(rec.conn, s.pfx) {
			s.counts.ConnLogs++
			s.metrics.accept(kindConn)
			if rec.conn.IsV4() && s.pfx != nil {
				asn, _, _ := s.pfx.Lookup(rec.conn.Addr, rec.conn.Start)
				s.sessionsByAS[uint32(asn)]++
			}
		} else {
			s.counts.Rejected++
			s.metrics.reject()
			res = applyRejected
		}
	case kindKRoot:
		ps := s.state(rec.kroot.Probe)
		ps.kRootCount++
		if ps.onKRoot(rec.kroot) {
			s.counts.KRoot++
			s.metrics.accept(kindKRoot)
		} else {
			s.counts.Rejected++
			s.metrics.reject()
			res = applyRejected
		}
	case kindUptime:
		ps := s.state(rec.uptime.Probe)
		ps.uptimeCount++
		if ps.onUptime(rec.uptime) {
			s.counts.Uptime++
			s.metrics.accept(kindUptime)
		} else {
			s.counts.Rejected++
			s.metrics.reject()
			res = applyRejected
		}
	}
	if timed {
		s.metrics.applySec.ObserveSince(t0)
	}
	return res
}

// maybeCheckpoint counts applied records and, at the configured
// cadence, checkpoints the shard and drops the WAL segments the
// checkpoint makes obsolete.
func (s *shard) maybeCheckpoint() {
	if s.log == nil || s.ckptEvery <= 0 || s.degraded.Load() {
		return
	}
	s.sinceCkpt++
	if s.sinceCkpt < s.ckptEvery {
		return
	}
	if err := s.checkpointNow(); err != nil {
		// The record that triggered this was already appended and
		// applied; only the checkpoint is missing. Degrade and retry
		// after re-arm (sinceCkpt stays over threshold).
		s.degrade(err)
	}
}

// checkpointNow syncs the log, atomically replaces the shard's
// checkpoint file, and truncates the WAL below it. Ordering matters:
// the log is synced first so the checkpoint never claims a sequence
// that could be lost, and segments are only removed once the
// checkpoint rename is durable.
func (s *shard) checkpointNow() error {
	start := time.Now()
	if err := s.log.Sync(); err != nil {
		return err
	}
	// The generation advances with the checkpoint attempt and is recorded
	// inside the document, so a recovered shard resumes the same count.
	// On a write failure the shard degrades and retries the checkpoint
	// after re-arm; the orphaned increment merely retires a cache key
	// early, which is always safe.
	s.gen++
	if err := writeCheckpoint(s.dir, s.buildCheckpoint()); err != nil {
		return err
	}
	s.sinceCkpt = 0
	if err := s.log.TruncateBefore(s.lastSeq + 1); err != nil {
		return err
	}
	s.metrics.checkpointed(time.Since(start))
	return nil
}

// ProbeCursor is a probe's resume position: how many records of each
// kind the ingester has consumed for the probe (accepted and rejected
// alike — rejected records were still drawn from the producer's
// stream). Returned by Cursor and the /api/v1/live/cursor endpoint.
type ProbeCursor struct {
	Probe    atlasdata.ProbeID `json:"probe"`
	Meta     int64             `json:"meta"`
	ConnLogs int64             `json:"connlogs"`
	KRoot    int64             `json:"kroot"`
	Uptime   int64             `json:"uptime"`
	Rejected int64             `json:"rejected"`
}

// cursor reads a probe's counters. Called from the shard goroutine
// (in-band marker) or after Close (quiescent).
func (s *shard) cursor(id atlasdata.ProbeID) ProbeCursor {
	c := ProbeCursor{Probe: id}
	if ps, ok := s.states[id]; ok {
		c.Meta = ps.metaCount
		c.ConnLogs = ps.connCount
		c.KRoot = ps.kRootCount
		c.Uptime = ps.uptimeCount
		c.Rejected = ps.rejected
	}
	return c
}

func (s *shard) state(id atlasdata.ProbeID) *probeState {
	ps, ok := s.states[id]
	if !ok {
		ps = newProbeState(id, s.churn)
		s.states[id] = ps
	}
	return ps
}

// view copies the shard's aggregation-relevant state. Called from the
// shard goroutine (in-band snapshot) or after Close (quiescent).
func (s *shard) view() *shardView {
	v := &shardView{counts: s.counts, ver: s.version()}
	v.sessionsByAS = make(map[uint32]int64, len(s.sessionsByAS))
	for asn, n := range s.sessionsByAS {
		v.sessionsByAS[asn] = n
	}
	v.probes = make([]probeSummary, 0, len(s.states))
	ids := make([]atlasdata.ProbeID, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		v.probes = append(v.probes, s.states[id].summarize())
	}
	return v
}

// String describes the ingester for logs.
func (in *Ingester) String() string {
	return fmt.Sprintf("stream.Ingester{shards: %d, buffer: %d}", in.cfg.Shards, in.cfg.Buffer)
}
