package stream_test

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/obs"
	"dynaddr/internal/stream"
)

// sumSeries totals every series of one family, optionally filtered to
// a label value.
func sumSeries(reg *obs.Registry, name string, filter ...obs.Label) float64 {
	var total float64
	for _, f := range reg.Gather() {
		if f.Name != name {
			continue
		}
	series:
		for _, m := range f.Metrics {
			for _, want := range filter {
				ok := false
				for _, got := range m.Labels {
					if got == want {
						ok = true
						break
					}
				}
				if !ok {
					continue series
				}
			}
			total += m.Value
		}
	}
	return total
}

func feedTestRecords(t *testing.T, ing *stream.Ingester) (fed int) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []atlasdata.ProbeID{206, 207, 208} {
		must(ing.Meta(meta(id)))
		must(ing.ConnLog(conn(id, at(0), at(24), "10.0.0.1")))
		must(ing.ConnLog(conn(id, at(25), at(49), "10.1.0.1")))
		must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(1), Sent: 3, Success: 3, LTS: 30}))
		must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(2), Uptime: 3600}))
		fed += 5
	}
	// One record that violates per-probe time order: counted as fed,
	// applied as rejected.
	must(ing.ConnLog(conn(206, at(10), at(12), "10.0.0.2")))
	return fed + 1
}

// TestIngestMetrics: the obs counters must agree exactly with the
// snapshot's own tallies — the two views of the same ingest run.
func TestIngestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: testStore(t), Metrics: reg})
	fed := feedTestRecords(t, ing)
	snap := ing.Snapshot() // in-band barrier: every record above is applied

	byKind := map[string]int64{
		"meta":    snap.Records.Meta,
		"connlog": snap.Records.ConnLogs,
		"kroot":   snap.Records.KRoot,
		"uptime":  snap.Records.Uptime,
	}
	var accepted float64
	for kind, want := range byKind {
		got := sumSeries(reg, "ingest_records_total", obs.L("kind", kind))
		if got != float64(want) {
			t.Errorf("ingest_records_total{kind=%q} = %v, want %d", kind, got, want)
		}
		accepted += got
	}
	rejected := sumSeries(reg, "ingest_records_rejected_total")
	if rejected != float64(snap.Records.Rejected) {
		t.Errorf("ingest_records_rejected_total = %v, want %d", rejected, snap.Records.Rejected)
	}
	if rejected == 0 {
		t.Error("expected at least one rejected record from the out-of-order entry")
	}
	if accepted+rejected != float64(fed) {
		t.Errorf("accepted %v + rejected %v != fed %d", accepted, rejected, fed)
	}
	// Queue-depth gauges read len(chan) at gather time; after the
	// snapshot barrier the channels are drained.
	for _, f := range reg.Gather() {
		if f.Name != "ingest_queue_depth" {
			continue
		}
		if len(f.Metrics) != 2 {
			t.Errorf("ingest_queue_depth has %d series, want one per shard (2)", len(f.Metrics))
		}
		for _, m := range f.Metrics {
			if m.Value != 0 {
				t.Errorf("ingest_queue_depth%v = %v after drain, want 0", m.Labels, m.Value)
			}
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableIngestMetrics: the WAL counters cover every fed record
// (persist runs before apply, rejected records included), fsyncs and
// checkpoints happen, and recovery replay is counted on the recovered
// ingester's registry.
func TestDurableIngestMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	cfg := stream.Config{
		Shards: 2, Pfx2AS: testStore(t), WALDir: dir,
		CheckpointEvery: 4, Metrics: reg,
	}
	ing, st, err := stream.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 {
		t.Fatalf("fresh dir replayed %d records", st.Replayed)
	}
	fed := feedTestRecords(t, ing)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	if got := sumSeries(reg, "wal_append_total"); got != float64(fed) {
		t.Errorf("wal_append_total = %v, want %d (every fed record is persisted)", got, fed)
	}
	if got := sumSeries(reg, "wal_fsync_total"); got == 0 {
		t.Error("wal_fsync_total = 0, want > 0")
	}
	if got := sumSeries(reg, "wal_appended_bytes_total"); got == 0 {
		t.Error("wal_appended_bytes_total = 0, want > 0")
	}
	if got := sumSeries(reg, "wal_checkpoints_total"); got == 0 {
		t.Error("wal_checkpoints_total = 0, want > 0 with CheckpointEvery=4")
	}

	// Reopen on a fresh registry: the replay counter must equal the
	// recovery stats, and the replayed records land in the ingest
	// counters too (they are applied by this process).
	reg2 := obs.NewRegistry()
	cfg.Metrics = reg2
	ing2, st2, err := stream.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ing2.Close()
	if got := sumSeries(reg2, "wal_recovery_records_total"); got != float64(st2.Replayed) {
		t.Errorf("wal_recovery_records_total = %v, want %d", got, st2.Replayed)
	}
	var applied float64
	for _, kind := range []string{"meta", "connlog", "kroot", "uptime"} {
		applied += sumSeries(reg2, "ingest_records_total", obs.L("kind", kind))
	}
	applied += sumSeries(reg2, "ingest_records_rejected_total")
	if applied != float64(st2.Replayed) {
		t.Errorf("recovered registry applied %v records, want %d (checkpointed records are restored, not re-applied)", applied, st2.Replayed)
	}
}
