package stream_test

import (
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
)

// TestReplayEquivalence streams a seed-77 paper-scale world through the
// ingester and checks that the snapshot reproduces the batch pipeline's
// Table 2 classification, per-AS address-change counts and per-AS
// total-time-fraction tallies exactly — the subsystem's core contract.
func TestReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale world generation in -short mode")
	}
	cfg := sim.DefaultConfig()
	cfg.Seed = 77
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := world.Dataset

	ing := stream.NewIngester(stream.Config{Shards: 4, Pfx2AS: ds.Pfx2AS})
	if err := sim.ReplayDataset(ds, ing); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	snap := ing.Snapshot()

	res := core.Filter(ds)

	// Record accounting: everything valid and in order, nothing rejected.
	var wantConns, wantKRoot, wantUptime int64
	for id := range ds.Probes {
		wantConns += int64(len(ds.ConnLogs[id]))
		wantKRoot += int64(len(ds.KRoot[id]))
		wantUptime += int64(len(ds.Uptime[id]))
	}
	if snap.Records.Rejected != 0 {
		t.Errorf("rejected %d records from a valid dataset", snap.Records.Rejected)
	}
	if snap.Records.Meta != int64(len(ds.Probes)) || snap.Records.ConnLogs != wantConns ||
		snap.Records.KRoot != wantKRoot || snap.Records.Uptime != wantUptime {
		t.Errorf("record counts = %+v, want %d/%d/%d/%d", snap.Records,
			len(ds.Probes), wantConns, wantKRoot, wantUptime)
	}
	if snap.Probes != len(ds.Probes) || snap.Unregistered != 0 {
		t.Errorf("probes = %d (unregistered %d), want %d (0)",
			snap.Probes, snap.Unregistered, len(ds.Probes))
	}

	// Table 2: the live classification must match the batch filter.
	for _, cat := range core.Categories {
		if got, want := snap.Categories[cat], res.Count(cat); got != want {
			t.Errorf("category %q: stream %d, batch %d", cat, got, want)
		}
	}
	if snap.GeoProbes != len(res.GeoProbes) || snap.ASProbes != len(res.ASProbes) {
		t.Errorf("geo/as probes = %d/%d, want %d/%d",
			snap.GeoProbes, snap.ASProbes, len(res.GeoProbes), len(res.ASProbes))
	}

	// Per-AS: same AS set, same probe membership counts, identical change
	// counts and bitwise-identical TTF mass at every duration value.
	byAS := core.ByAS(res)
	ttfs := core.ProbeTTFs(res)
	if got, want := len(snap.PerAS), len(byAS); got != want {
		t.Fatalf("AS count: stream %d, batch %d", got, want)
	}
	for asn, ids := range byAS {
		agg := snap.AS(asn)
		if agg == nil {
			t.Errorf("AS%d missing from snapshot", asn)
			continue
		}
		if agg.Probes != len(ids) {
			t.Errorf("AS%d probes: stream %d, batch %d", asn, agg.Probes, len(ids))
		}
		var wantChanges int64
		for _, id := range ids {
			wantChanges += int64(len(res.Views[id].Changes))
		}
		if agg.Changes != wantChanges {
			t.Errorf("AS%d changes: stream %d, batch %d", asn, agg.Changes, wantChanges)
		}
		want := core.GroupTTF(ttfs, ids)
		got := agg.TTF
		wantVals, gotVals := want.Values(), got.Values()
		if len(wantVals) != len(gotVals) {
			t.Errorf("AS%d TTF: stream has %d duration values, batch %d",
				asn, len(gotVals), len(wantVals))
			continue
		}
		for i, v := range wantVals {
			if gotVals[i] != v {
				t.Errorf("AS%d TTF value %d: stream %v, batch %v", asn, i, gotVals[i], v)
				continue
			}
			// Masses accumulate in the same per-probe, per-duration order
			// in both pipelines, so they must be bitwise equal.
			if gm, wm := got.MassOf(v), want.MassOf(v); gm != wm {
				t.Errorf("AS%d TTF mass at %vh: stream %v, batch %v", asn, v, gm, wm)
			}
		}
	}

	// Event detection: reboot counts must match the batch detector
	// exactly; network-outage counts match it on every closed loss run
	// (a run still open when the stream ends has no closing good round,
	// so the batch detector sees one extra candidate).
	var wantReboots, wantOutages int64
	for id := range ds.Probes {
		wantReboots += int64(len(core.DetectReboots(ds.Uptime[id])))
		rounds := ds.KRoot[id]
		trimmed := rounds
		for len(trimmed) > 0 && trimmed[len(trimmed)-1].AllLost() {
			trimmed = trimmed[:len(trimmed)-1]
		}
		wantOutages += int64(len(core.DetectNetworkOutages(trimmed)))
	}
	if snap.Reboots != wantReboots {
		t.Errorf("reboots: stream %d, batch %d", snap.Reboots, wantReboots)
	}
	if snap.NetworkOutages != wantOutages {
		t.Errorf("network outages: stream %d, batch (closed runs) %d",
			snap.NetworkOutages, wantOutages)
	}
}

// TestGenerateToMatchesReplay checks the generator's incremental
// emission path: driving an ingester from GenerateTo must leave it in
// the same state as replaying the finished dataset.
func TestGenerateToMatchesReplay(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 9
	cfg.Scale = 0.05

	// GenerateTo cannot know the pfx2as table before generation builds
	// it, so compare the AS-blind states: classification counts and
	// record accounting still must agree.
	live := stream.NewIngester(stream.Config{Shards: 3})
	world, err := sim.GenerateTo(cfg, live)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	replayed := stream.NewIngester(stream.Config{Shards: 3})
	if err := sim.ReplayDataset(world.Dataset, replayed); err != nil {
		t.Fatal(err)
	}
	if err := replayed.Close(); err != nil {
		t.Fatal(err)
	}

	a, b := live.Snapshot(), replayed.Snapshot()
	if a.Records != b.Records {
		t.Errorf("records: live %+v, replay %+v", a.Records, b.Records)
	}
	if a.Probes != b.Probes || a.Changes != b.Changes ||
		a.NetworkOutages != b.NetworkOutages || a.Reboots != b.Reboots ||
		a.OutageLinkedChanges != b.OutageLinkedChanges || a.OpenLossRuns != b.OpenLossRuns {
		t.Errorf("aggregates differ: live %+v, replay %+v", a, b)
	}
	for _, cat := range core.Categories {
		if a.Categories[cat] != b.Categories[cat] {
			t.Errorf("category %q: live %d, replay %d", cat, a.Categories[cat], b.Categories[cat])
		}
	}
}

// sinkFunc adapts callbacks to sim.RecordSink for test doubles.
type sinkFunc struct {
	meta func(atlasdata.ProbeMeta) error
	conn func(atlasdata.ConnLogEntry) error
	kr   func(atlasdata.KRootRound) error
	up   func(atlasdata.UptimeRecord) error
}

func (s sinkFunc) Meta(m atlasdata.ProbeMeta) error       { return s.meta(m) }
func (s sinkFunc) ConnLog(e atlasdata.ConnLogEntry) error { return s.conn(e) }
func (s sinkFunc) KRoot(k atlasdata.KRootRound) error     { return s.kr(k) }
func (s sinkFunc) Uptime(u atlasdata.UptimeRecord) error  { return s.up(u) }

// TestGenerateToEmissionOrder checks the merged per-probe stream is
// time-ordered per record kind and grouped by probe.
func TestGenerateToEmissionOrder(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 4
	cfg.Scale = 0.03

	lastConn := map[atlasdata.ProbeID]atlasdata.ConnLogEntry{}
	lastKR := map[atlasdata.ProbeID]atlasdata.KRootRound{}
	lastUp := map[atlasdata.ProbeID]atlasdata.UptimeRecord{}
	metaSeen := map[atlasdata.ProbeID]bool{}
	var order []atlasdata.ProbeID

	sink := sinkFunc{
		meta: func(m atlasdata.ProbeMeta) error {
			metaSeen[m.ID] = true
			order = append(order, m.ID)
			return nil
		},
		conn: func(e atlasdata.ConnLogEntry) error {
			if !metaSeen[e.Probe] {
				t.Errorf("probe %d records before metadata", e.Probe)
			}
			if prev, ok := lastConn[e.Probe]; ok && e.Start.Before(prev.Start) {
				t.Errorf("probe %d conn entries out of order", e.Probe)
			}
			lastConn[e.Probe] = e
			return nil
		},
		kr: func(k atlasdata.KRootRound) error {
			if prev, ok := lastKR[k.Probe]; ok && k.Timestamp.Before(prev.Timestamp) {
				t.Errorf("probe %d kroot rounds out of order", k.Probe)
			}
			lastKR[k.Probe] = k
			return nil
		},
		up: func(u atlasdata.UptimeRecord) error {
			if prev, ok := lastUp[u.Probe]; ok && u.Timestamp.Before(prev.Timestamp) {
				t.Errorf("probe %d uptime records out of order", u.Probe)
			}
			lastUp[u.Probe] = u
			return nil
		},
	}
	world, err := sim.GenerateTo(cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(world.Dataset.Probes) {
		t.Errorf("emitted %d probes, dataset has %d", len(order), len(world.Dataset.Probes))
	}
}
