package stream

// Version identifies a stream position for read-side caching: the sum
// of the shards' checkpoint generations plus the total number of
// records the shards have consumed (accepted and rejected alike — both
// advance the state machines' position in the producer streams). Both
// components only grow, so two equal Versions observed from one process
// describe byte-identical analysis state; that is the property the
// serving tier's ETags rely on. Seq is shard-count invariant (it counts
// records, not barriers); Generation is not (each shard checkpoints on
// its own cadence), which is fine — an ETag only needs to identify
// state within one deployment, not across redeployments.
type Version struct {
	Generation uint64 `json:"generation"`
	Seq        uint64 `json:"seq"`
}

// add accumulates a shard-local version into a stream-wide one.
func (v *Version) add(o Version) {
	v.Generation += o.Generation
	v.Seq += o.Seq
}

// version reports the shard-local stream position. Called from the
// shard goroutine (in-band marker) or after Close (quiescent).
func (s *shard) version() Version {
	return Version{
		Generation: s.gen,
		Seq:        uint64(s.counts.Total() + s.counts.Rejected),
	}
}
