package stream_test

import (
	"context"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/stream"
	"dynaddr/internal/wal"
)

// TestVersionTracksStream pins the Version invariants the serving tier
// builds its cache keys on: Seq counts every consumed record (accepted
// and rejected alike), Generation counts completed checkpoints, and
// both are shard-count invariant in sum.
func TestVersionTracksStream(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 3, Pfx2AS: testStore(t)})
	defer ing.Close()

	if v := ing.Snapshot().Version; v != (stream.Version{}) {
		t.Fatalf("empty ingester version = %+v, want zero", v)
	}

	id := atlasdata.ProbeID(206)
	if err := ing.Meta(meta(id)); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(conn(id, at(0), at(24), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	// An out-of-order session is rejected by the shard but still consumed
	// from the stream — it must advance Seq, or a producer that only
	// sends rejects would look cache-fresh forever.
	if err := ing.ConnLog(conn(id, at(0), at(10), "10.0.0.2")); err != nil {
		t.Fatal(err)
	}

	snap := ing.Snapshot()
	if snap.Version.Seq != 3 {
		t.Errorf("Seq = %d, want 3 (2 accepted + 1 rejected)", snap.Version.Seq)
	}
	if snap.Version.Generation != 0 {
		t.Errorf("in-memory Generation = %d, want 0 (never checkpoints)", snap.Version.Generation)
	}

	// The cursor validator is the owning shard's version: nonzero Seq,
	// and stable when nothing new arrives.
	_, v1, err := ing.CursorVersioned(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Seq == 0 || v1.Seq > snap.Version.Seq {
		t.Errorf("cursor version Seq = %d, want in (0, %d]", v1.Seq, snap.Version.Seq)
	}
	_, v2, err := ing.CursorVersioned(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("cursor version moved without ingest: %+v then %+v", v1, v2)
	}
}

// TestVersionGenerationAdvances checks that a durable ingester's
// generation grows with checkpoints and survives recovery, so ETags
// minted before a crash can never validate state from after it.
func TestVersionGenerationAdvances(t *testing.T) {
	dir := t.TempDir()
	cfg := stream.Config{
		Shards: 2, Pfx2AS: testStore(t),
		WALDir: dir, Sync: wal.SyncNever, CheckpointEvery: 1,
	}
	ing := stream.NewIngester(cfg)
	id := atlasdata.ProbeID(206)
	if err := ing.Meta(meta(id)); err != nil {
		t.Fatal(err)
	}
	if err := ing.ConnLog(conn(id, at(0), at(24), "10.0.0.1")); err != nil {
		t.Fatal(err)
	}
	snap := ing.Snapshot()
	if snap.Version.Generation == 0 {
		t.Fatalf("durable ingester with CheckpointEvery=1 stayed at generation 0: %+v", snap.Version)
	}
	if snap.Version.Seq != 2 {
		t.Errorf("Seq = %d, want 2", snap.Version.Seq)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	re, _, err := stream.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Snapshot().Version
	if got.Generation < snap.Version.Generation {
		t.Errorf("recovered generation %d < pre-crash %d", got.Generation, snap.Version.Generation)
	}
	if got.Seq != snap.Version.Seq {
		t.Errorf("recovered Seq = %d, want %d", got.Seq, snap.Version.Seq)
	}
}
