package stream_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/isp"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
	"dynaddr/internal/stream"
	"dynaddr/internal/wal"
)

// recoverWorld builds a small mixed world for the recovery tests: PPP
// with nightly resets, DHCP with lease churn, and a static control, plus
// dual-stack and testing-address probes so the recovered state machines
// cover the stripped-log and v6 paths too.
func recoverWorld(t testing.TB, seed uint64) *atlasdata.Dataset {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 1
	cfg.Profiles = []isp.Profile{
		{
			Name: "PeriodicNet", ASN: 100, Country: "DE", Kind: isp.PPP,
			Cohorts:  []isp.Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
			SkipProb: 0.01, SameAddrProb: 0.01,
			OutageRenumberFrac: 1.0,
			NumPrefixes:        2, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 6,
		},
		{
			Name: "LeaseNet", ASN: 200, Country: "US", Kind: isp.DHCP,
			Lease: 4 * simclock.Hour, ReclaimMean: 30 * simclock.Day,
			NumPrefixes: 2, PrefixBits: 16, CrossPrefixProb: 0.3,
			DefaultProbes: 6,
		},
		{
			Name: "StaticNet", ASN: 300, Country: "FR", Kind: isp.Static,
			NumPrefixes: 1, PrefixBits: 16,
			DefaultProbes: 4,
		},
	}
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world.Dataset
}

// snapshotBytes renders a snapshot canonically, including the fields
// the public JSON encoding omits (categories, per-AS aggregates and
// their TTF distributions), so byte equality means full state equality.
func snapshotBytes(t testing.TB, snap *stream.Snapshot) []byte {
	t.Helper()
	type asOut struct {
		Agg *stream.ASAggregate `json:"agg"`
		TTF *stats.Weighted     `json:"ttf"`
	}
	out := struct {
		Snap       *stream.Snapshot `json:"snap"`
		Categories map[string]int   `json:"categories"`
		PerAS      map[string]asOut `json:"per_as"`
	}{Snap: snap, Categories: map[string]int{}, PerAS: map[string]asOut{}}
	for cat, n := range snap.Categories {
		out.Categories[fmt.Sprint(cat)] = n
	}
	for _, asn := range snap.ASNs() {
		agg := snap.AS(asn)
		out.PerAS[fmt.Sprintf("%d", asn)] = asOut{Agg: agg, TTF: agg.TTF}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// memorySnapshot streams the whole dataset through an in-memory
// ingester — the uninterrupted reference run.
func memorySnapshot(t testing.TB, ds *atlasdata.Dataset, shards int) []byte {
	t.Helper()
	ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS})
	if err := sim.ReplayDataset(ds, ing); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	return snapshotBytes(t, ing.Snapshot())
}

// errStop is the sentinel a stopAfter sink uses to end a replay
// mid-stream, simulating a crash arriving at an arbitrary record.
var errStop = errors.New("stop")

// stopAfter forwards records to an ingester until n have passed, then
// fails every call — the producer's view of a process dying mid-stream.
type stopAfter struct {
	ing  *stream.Ingester
	left int
}

func (s *stopAfter) take() bool { s.left--; return s.left >= 0 }

func (s *stopAfter) Meta(m atlasdata.ProbeMeta) error {
	if !s.take() {
		return errStop
	}
	return s.ing.Meta(m)
}

func (s *stopAfter) ConnLog(e atlasdata.ConnLogEntry) error {
	if !s.take() {
		return errStop
	}
	return s.ing.ConnLog(e)
}

func (s *stopAfter) KRoot(k atlasdata.KRootRound) error {
	if !s.take() {
		return errStop
	}
	return s.ing.KRoot(k)
}

func (s *stopAfter) Uptime(u atlasdata.UptimeRecord) error {
	if !s.take() {
		return errStop
	}
	return s.ing.Uptime(u)
}

// skipSink resumes a producer against a recovered ingester: on the
// first record for each probe it asks the ingester for that probe's
// cursor, then skips exactly the per-kind counts the cursor reports —
// the durable prefix — and feeds everything after. No gaps, no
// duplicates.
type skipSink struct {
	ing     *stream.Ingester
	cursors map[atlasdata.ProbeID]*stream.ProbeCursor
}

func newSkipSink(ing *stream.Ingester) *skipSink {
	return &skipSink{ing: ing, cursors: make(map[atlasdata.ProbeID]*stream.ProbeCursor)}
}

func (s *skipSink) cursor(id atlasdata.ProbeID) (*stream.ProbeCursor, error) {
	if c, ok := s.cursors[id]; ok {
		return c, nil
	}
	c, err := s.ing.Cursor(context.Background(), id)
	if err != nil {
		return nil, err
	}
	s.cursors[id] = &c
	return &c, nil
}

func (s *skipSink) Meta(m atlasdata.ProbeMeta) error {
	c, err := s.cursor(m.ID)
	if err != nil {
		return err
	}
	if c.Meta > 0 {
		c.Meta--
		return nil
	}
	return s.ing.Meta(m)
}

func (s *skipSink) ConnLog(e atlasdata.ConnLogEntry) error {
	c, err := s.cursor(e.Probe)
	if err != nil {
		return err
	}
	if c.ConnLogs > 0 {
		c.ConnLogs--
		return nil
	}
	return s.ing.ConnLog(e)
}

func (s *skipSink) KRoot(k atlasdata.KRootRound) error {
	c, err := s.cursor(k.Probe)
	if err != nil {
		return err
	}
	if c.KRoot > 0 {
		c.KRoot--
		return nil
	}
	return s.ing.KRoot(k)
}

func (s *skipSink) Uptime(u atlasdata.UptimeRecord) error {
	c, err := s.cursor(u.Probe)
	if err != nil {
		return err
	}
	if c.Uptime > 0 {
		c.Uptime--
		return nil
	}
	return s.ing.Uptime(u)
}

func totalRecords(ds *atlasdata.Dataset) int {
	n := len(ds.Probes)
	for id := range ds.Probes {
		n += len(ds.ConnLogs[id]) + len(ds.KRoot[id]) + len(ds.Uptime[id])
	}
	return n
}

// durableConfig keeps segments and checkpoint cadence small so even the
// tiny worlds rotate segments and checkpoint several times.
func durableConfig(ds *atlasdata.Dataset, dir string, shards int) stream.Config {
	return stream.Config{
		Shards:          shards,
		Pfx2AS:          ds.Pfx2AS,
		WALDir:          dir,
		Sync:            wal.SyncNever, // tests Close (which syncs) before damaging
		CheckpointEvery: 64,
		SegmentBytes:    4096,
	}
}

// TestRecoverFullStream is the baseline golden test: a durable run over
// the full dataset, closed cleanly, recovers to a snapshot
// byte-identical to an uninterrupted in-memory run — including probes
// with open loss runs and half-open (still unbounded) address runs at
// stream end.
func TestRecoverFullStream(t *testing.T) {
	ds := recoverWorld(t, 7)
	want := memorySnapshot(t, ds, 4)
	dir := t.TempDir()

	ing, st, err := stream.Recover(durableConfig(ds, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.CheckpointProbes != 0 {
		t.Errorf("fresh directory recovered state: %+v", st)
	}
	if err := sim.ReplayDataset(ds, ing); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}

	rec, st, err := stream.Recover(durableConfig(ds, dir, 4))
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointProbes == 0 {
		t.Error("no probes restored from checkpoints; checkpoint cadence not exercised")
	}
	got := snapshotBytes(t, rec.Snapshot())
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("recovered snapshot differs from uninterrupted run\n got: %.200s\nwant: %.200s", got, want)
	}

	// The partition count is part of the on-disk layout.
	if _, _, err := stream.Recover(durableConfig(ds, dir, 2)); err == nil ||
		!strings.Contains(err.Error(), "partition") {
		t.Errorf("repartitioning an existing WAL dir not refused: %v", err)
	}
}

// damageLastSegment mutates the newest WAL segment of one shard
// directory: "chop" cuts bytes off its end (torn tail), "flip" XORs a
// byte in the middle (bit rot).
func damageLastSegment(t *testing.T, shardDir, mode string) {
	t.Helper()
	ents, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatalf("no segments in %s", shardDir)
	}
	sort.Strings(segs)
	path := filepath.Join(shardDir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return // empty active segment: nothing to damage
	}
	switch mode {
	case "chop":
		if err := os.Truncate(path, int64(len(data)-min(len(data), 7))); err != nil {
			t.Fatal(err)
		}
	case "flip":
		data[len(data)/2] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown damage mode %q", mode)
	}
}

// TestRecoverEquivalence is the tentpole's acceptance matrix: across
// seeds and shard counts, a durable run killed mid-stream — with the
// WAL tail optionally torn or bit-flipped afterwards — recovers, hands
// producers their per-probe resume cursors, and after the resumed
// replay reaches a snapshot byte-identical to a run that never crashed.
func TestRecoverEquivalence(t *testing.T) {
	cases := []struct {
		seed   uint64
		shards int
	}{
		{seed: 3, shards: 1},
		{seed: 11, shards: 4},
	}
	damages := []string{"none", "chop", "flip"}
	for _, tc := range cases {
		ds := recoverWorld(t, tc.seed)
		want := memorySnapshot(t, ds, tc.shards)
		stopAt := totalRecords(ds) * 2 / 5

		for _, damage := range damages {
			name := fmt.Sprintf("seed=%d/shards=%d/damage=%s", tc.seed, tc.shards, damage)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()

				// Phase 1: durable run dies ~40% into the stream.
				ing, _, err := stream.Recover(durableConfig(ds, dir, tc.shards))
				if err != nil {
					t.Fatal(err)
				}
				if err := sim.ReplayDataset(ds, &stopAfter{ing: ing, left: stopAt}); !errors.Is(err, errStop) {
					t.Fatalf("replay ended with %v, want errStop", err)
				}
				if err := ing.Close(); err != nil {
					t.Fatal(err)
				}

				// Phase 2: storage damage on one shard's newest segment.
				if damage != "none" {
					damageLastSegment(t, filepath.Join(dir, "shard-000"), damage)
				}

				// Phase 3: recover, resume the producer from the cursors,
				// finish the stream.
				rec, _, err := stream.Recover(durableConfig(ds, dir, tc.shards))
				if err != nil {
					t.Fatal(err)
				}
				if err := sim.ReplayDataset(ds, newSkipSink(rec)); err != nil {
					t.Fatal(err)
				}
				if err := rec.Close(); err != nil {
					t.Fatal(err)
				}
				got := snapshotBytes(t, rec.Snapshot())
				if string(got) != string(want) {
					t.Errorf("post-recovery snapshot differs from uninterrupted run\n got: %.200s\nwant: %.200s", got, want)
				}
			})
		}
	}
}

// BenchmarkRecover measures reconstruction (checkpoint load + WAL
// replay) of a durable ingester state.
func BenchmarkRecover(b *testing.B) {
	ds := recoverWorld(b, 5)
	dir := b.TempDir()
	cfg := durableConfig(ds, dir, 4)
	ing, _, err := stream.Recover(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.ReplayDataset(ds, ing); err != nil {
		b.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, _, err := stream.Recover(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
