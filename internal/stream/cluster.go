package stream

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/stats"
	"dynaddr/internal/wal"
)

// Cluster support: an Ingester that owns a subset of the partition
// space exposes its state in mergeable form (PeerView, AnalysisPeerView)
// and can hand whole partitions to another node (ReleasePartition →
// PartitionState → AdoptPartition). The merge functions reuse the exact
// shard-merge fold the single-node snapshot path uses, so a peer
// boundary behaves like a shard boundary: scatter-gather over peers is
// byte-identical to a single process with the same partition count.

// ProbeView is one probe's snapshot contribution in wire form — the
// exported mirror of the internal per-probe summary, carried between
// peers as JSON. stats.Weighted marshals its buckets exactly (no float
// formatting loss), so a view survives the trip byte-deterministically.
type ProbeView struct {
	ID             atlasdata.ProbeID `json:"id"`
	HasMeta        bool              `json:"has_meta,omitempty"`
	Category       core.Category     `json:"category,omitempty"`
	Country        string            `json:"country,omitempty"`
	ASN            uint32            `json:"asn,omitempty"`
	MultiAS        bool              `json:"multi_as,omitempty"`
	Sessions       int64             `json:"sessions,omitempty"`
	Changes        int64             `json:"changes,omitempty"`
	NetworkOutages int64             `json:"network_outages,omitempty"`
	Reboots        int64             `json:"reboots,omitempty"`
	OutageLinked   int64             `json:"outage_linked,omitempty"`
	OpenLossRun    bool              `json:"open_loss_run,omitempty"`
	ConnectedDays  float64           `json:"connected_days,omitempty"`
	TTF            *stats.Weighted   `json:"ttf,omitempty"`
}

func (p ProbeView) internal() probeSummary {
	return probeSummary{
		ID:             p.ID,
		HasMeta:        p.HasMeta,
		Category:       p.Category,
		Country:        p.Country,
		ASN:            p.ASN,
		MultiAS:        p.MultiAS,
		Sessions:       p.Sessions,
		Changes:        p.Changes,
		NetworkOutages: p.NetworkOutages,
		Reboots:        p.Reboots,
		OutageLinked:   p.OutageLinked,
		OpenLossRun:    p.OpenLossRun,
		ConnectedDays:  p.ConnectedDays,
		TTF:            p.TTF,
	}
}

func externalProbe(p probeSummary) ProbeView {
	return ProbeView{
		ID:             p.ID,
		HasMeta:        p.HasMeta,
		Category:       p.Category,
		Country:        p.Country,
		ASN:            p.ASN,
		MultiAS:        p.MultiAS,
		Sessions:       p.Sessions,
		Changes:        p.Changes,
		NetworkOutages: p.NetworkOutages,
		Reboots:        p.Reboots,
		OutageLinked:   p.OutageLinked,
		OpenLossRun:    p.OpenLossRun,
		ConnectedDays:  p.ConnectedDays,
		TTF:            p.TTF,
	}
}

// PeerView is one peer's complete mergeable snapshot contribution: its
// owned partitions, record counts, stream position and per-probe
// summaries (sorted by probe ID). A coordinator collects one PeerView
// per peer and folds them with MergePeerViews.
type PeerView struct {
	TotalPartitions int              `json:"total_partitions"`
	Partitions      []int            `json:"partitions"`
	Counts          RecordCounts     `json:"counts"`
	Version         Version          `json:"version"`
	SessionsByAS    map[uint32]int64 `json:"sessions_by_as,omitempty"`
	Probes          []ProbeView      `json:"probes"`
}

// PeerView takes a consistent snapshot barrier across the ingester's
// shards and returns it in wire form for a coordinator to merge.
func (in *Ingester) PeerView(ctx context.Context) (*PeerView, error) {
	views, err := in.collectViews(ctx)
	if err != nil {
		return nil, err
	}
	pv := &PeerView{
		TotalPartitions: in.total,
		Partitions:      in.OwnedPartitions(),
		SessionsByAS:    make(map[uint32]int64),
		Probes:          []ProbeView{},
	}
	for _, v := range views {
		pv.Counts.add(v.counts)
		pv.Version.add(v.ver)
		for asn, n := range v.sessionsByAS {
			pv.SessionsByAS[asn] += n
		}
		for _, p := range v.probes {
			pv.Probes = append(pv.Probes, externalProbe(p))
		}
	}
	sortProbeViews(pv.Probes)
	return pv, nil
}

func sortProbeViews(ps []ProbeView) {
	// Insertion point is almost always the end (shard views are sorted),
	// but a global sort keeps the contract independent of shard layout.
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// MergePeerViews folds peer contributions into the same Snapshot a
// single-node ingester with `total` partitions would produce over the
// same records: probes re-enter the fold in global probe-ID order, so
// the order-sensitive float accumulations (TTF distributions) replay
// exactly. The caller is responsible for coverage (each partition owned
// by exactly one view) — a gap or overlap produces a snapshot of a
// different record multiset, never detected here.
func MergePeerViews(views []*PeerView, total int) *Snapshot {
	svs := make([]*shardView, 0, len(views))
	for _, v := range views {
		sv := &shardView{
			counts:       v.Counts,
			ver:          v.Version,
			sessionsByAS: v.SessionsByAS,
			probes:       make([]probeSummary, 0, len(v.Probes)),
		}
		if sv.sessionsByAS == nil {
			sv.sessionsByAS = map[uint32]int64{}
		}
		for _, p := range v.Probes {
			sv.probes = append(sv.probes, p.internal())
		}
		svs = append(svs, sv)
	}
	return mergeViews(svs, total)
}

// AnalysisPeerView is one peer's mergeable analysis contribution:
// frozen per-probe event state plus day-bucketed churn counters, taken
// at a consistent barrier. The query-time Compute fold runs on the
// coordinator after the merge.
type AnalysisPeerView struct {
	TotalPartitions int                          `json:"total_partitions"`
	Partitions      []int                        `json:"partitions"`
	Version         Version                      `json:"version"`
	Events          []liveanalysis.ProbeEvents   `json:"events"`
	Churn           map[int]core.PrefixChangeRow `json:"churn,omitempty"`
}

// AnalysisPeerView takes a consistent analysis barrier and returns the
// pre-Compute event state for a coordinator to merge. Returns
// ErrAnalysisDisabled when the ingester runs without Config.Analysis.
func (in *Ingester) AnalysisPeerView(ctx context.Context) (*AnalysisPeerView, error) {
	views, err := in.collectAnalysisViews(ctx)
	if err != nil {
		return nil, err
	}
	pv := &AnalysisPeerView{
		TotalPartitions: in.total,
		Partitions:      in.OwnedPartitions(),
		Events:          []liveanalysis.ProbeEvents{},
		Churn:           make(map[int]core.PrefixChangeRow),
	}
	for _, v := range views {
		pv.Version.add(v.ver)
		pv.Events = append(pv.Events, v.events...)
		for day, row := range v.churn {
			r := pv.Churn[day]
			r.Accumulate(row)
			pv.Churn[day] = r
		}
	}
	return pv, nil
}

// MergeAnalysisPeerViews folds peer analysis contributions and runs the
// query-time Compute — the same mergeAnalysis discipline the single-node
// barrier uses (events re-sorted into global probe-ID order, churn
// summed), so the result is byte-identical to a single process over the
// same records.
func MergeAnalysisPeerViews(views []*AnalysisPeerView) (*liveanalysis.Result, Version) {
	avs := make([]*analysisView, 0, len(views))
	for _, v := range views {
		av := &analysisView{events: v.Events, ver: v.Version, churn: v.Churn}
		if av.churn == nil {
			av.churn = map[int]core.PrefixChangeRow{}
		}
		avs = append(avs, av)
	}
	return mergeAnalysis(avs)
}

// PartitionState is a released partition packaged for shipping: the
// partition's latest durable checkpoint (nil if it never checkpointed)
// plus the WAL tail past it, exactly the inputs crash recovery rebuilds
// from. Adopting replays checkpoint-then-tail through the same state
// machines, so the moved partition's contribution to every aggregate —
// including its Version — is preserved bit for bit.
type PartitionState struct {
	Partition  int              `json:"partition"`
	Checkpoint *shardCheckpoint `json:"checkpoint,omitempty"`
	// Tail holds the WAL frame payloads past the checkpoint, in order
	// (JSON carries them base64-encoded). The adopter re-appends them
	// verbatim into a fresh log before applying, keeping the adopted
	// partition independently crash-recoverable.
	Tail [][]byte `json:"tail,omitempty"`
}

// ReleasePartition removes partition p from this ingester and returns
// its complete state for shipping to an adopting peer. The partition's
// shard is drained and stopped first, so the returned state reflects
// every record whose ingest call returned before the release. After a
// release, ingest for the partition's probes returns ErrNotOwner.
//
// Durable ingesters load the state from disk (checkpoint + WAL tail —
// what recovery would see) and rename the shard directory aside, so a
// restart does not resurrect the moved partition. Dead letters stay
// with the renamed directory on the releasing node. A degraded shard
// refuses to release: its WAL does not cover its parked records.
func (in *Ingester) ReleasePartition(p int) (*PartitionState, error) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil, ErrClosed
	}
	if p < 0 || p >= in.total || in.table[p] < 0 {
		in.mu.Unlock()
		return nil, fmt.Errorf("stream: release partition %d: %w", p, ErrNotOwner)
	}
	li := int(in.table[p])
	s := in.shards[li]
	if s.degraded.Load() {
		in.mu.Unlock()
		return nil, fmt.Errorf("stream: release partition %d: %w", p, ErrDegraded)
	}
	shards := make([]*shard, 0, len(in.shards)-1)
	shards = append(shards, in.shards[:li]...)
	shards = append(shards, in.shards[li+1:]...)
	in.shards = shards
	in.rebuildTable()
	close(s.in)
	in.mu.Unlock()

	// The shard drains its queue (snapshot barriers included) and closes
	// its logs before done is closed.
	<-s.done
	if err := s.walError(); err != nil {
		return nil, fmt.Errorf("stream: release partition %d: %w", p, err)
	}

	st := &PartitionState{Partition: p}
	if s.dir == "" {
		// In-memory: serialize the live state through the checkpoint codec
		// (exact float round-trip) with no tail.
		st.Checkpoint = s.buildCheckpoint()
		return st, nil
	}
	ck, err := loadCheckpoint(s.dir)
	if err != nil {
		return nil, fmt.Errorf("stream: release partition %d: %w", p, err)
	}
	from := uint64(1)
	if ck != nil {
		st.Checkpoint = ck
		from = ck.Seq + 1
	}
	tail, err := wal.Collect(s.dir, from)
	if err != nil {
		return nil, fmt.Errorf("stream: release partition %d: %w", p, err)
	}
	st.Tail = tail
	aside := s.dir + ".released"
	if err := os.RemoveAll(aside); err != nil {
		return nil, err
	}
	if err := os.Rename(s.dir, aside); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(s.dir)); err != nil {
		return nil, err
	}
	return st, nil
}

// AdoptPartition takes ownership of a partition released by another
// peer: it rebuilds the partition's shard from the shipped checkpoint
// and WAL tail (exactly like crash recovery), makes the state durable
// locally when the ingester has a WAL directory, and starts routing the
// partition's probes to the new shard. The shipped tail is re-appended
// frame for frame before being applied, so the adopter is immediately
// crash-recoverable to the same state.
func (in *Ingester) AdoptPartition(st *PartitionState) error {
	if st == nil {
		return fmt.Errorf("stream: adopt: nil partition state")
	}
	p := st.Partition
	if st.Checkpoint != nil && st.Checkpoint.Version != checkpointVersion {
		return fmt.Errorf("stream: adopt partition %d: checkpoint version %d, want %d", p, st.Checkpoint.Version, checkpointVersion)
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return ErrClosed
	}
	if p < 0 || p >= in.total {
		return fmt.Errorf("stream: adopt partition %d outside [0, %d)", p, in.total)
	}
	if in.table[p] >= 0 {
		return fmt.Errorf("stream: adopt partition %d: already owned", p)
	}

	s := in.newShard(p)
	if st.Checkpoint != nil {
		s.restoreCheckpoint(st.Checkpoint)
	}
	if in.cfg.WALDir != "" {
		s.dir = filepath.Join(in.cfg.WALDir, fmt.Sprintf("shard-%03d", p))
		s.ckptEvery = in.cfg.CheckpointEvery
		if _, err := os.Stat(s.dir); err == nil {
			return fmt.Errorf("stream: adopt partition %d: directory %s already exists", p, s.dir)
		}
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return err
		}
		from := uint64(1)
		if st.Checkpoint != nil {
			if err := writeCheckpoint(s.dir, st.Checkpoint); err != nil {
				return fmt.Errorf("stream: adopt partition %d: %w", p, err)
			}
			from = st.Checkpoint.Seq + 1
		}
		opt := wal.Options{
			SegmentBytes: in.cfg.SegmentBytes,
			Sync:         in.cfg.Sync,
			Metrics:      wal.NewMetrics(in.cfg.Metrics, strconv.Itoa(p)),
			FS:           in.cfg.FS,
		}
		s.walOpt = opt
		opt.FirstSeq = from
		log, err := wal.Open(s.dir, opt)
		if err != nil {
			return fmt.Errorf("stream: adopt partition %d: %w", p, err)
		}
		for _, payload := range st.Tail {
			rec, derr := decodeRecord(payload)
			if derr != nil {
				log.Close()
				return fmt.Errorf("stream: adopt partition %d: shipped tail: %w", p, derr)
			}
			if _, aerr := log.Append(payload); aerr != nil {
				log.Close()
				return fmt.Errorf("stream: adopt partition %d: %w", p, aerr)
			}
			s.apply(rec)
			s.sinceCkpt++
		}
		if err := log.Sync(); err != nil {
			log.Close()
			return fmt.Errorf("stream: adopt partition %d: %w", p, err)
		}
		s.log = log
		s.lastSeq = log.NextSeq() - 1
	} else {
		for _, payload := range st.Tail {
			rec, derr := decodeRecord(payload)
			if derr != nil {
				return fmt.Errorf("stream: adopt partition %d: shipped tail: %w", p, derr)
			}
			s.apply(rec)
		}
	}
	s.metrics.flush()

	shards := make([]*shard, 0, len(in.shards)+1)
	shards = append(shards, in.shards...)
	shards = append(shards, s)
	in.shards = shards
	in.rebuildTable()
	in.startShard(s)
	return nil
}
