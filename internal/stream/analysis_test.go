package stream_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stream"
)

// resultBytes canonicalises a live-analysis result for byte comparison.
// Result is all plain values and deterministically ordered slices, so
// byte equality of the JSON means full value equality.
func resultBytes(t testing.TB, r *liveanalysis.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireAnalysisEquals asserts the streaming result matches the batch
// oracle over the same records, byte for byte.
func requireAnalysisEquals(t *testing.T, label string, got *liveanalysis.Result, ds *atlasdata.Dataset) {
	t.Helper()
	want := liveanalysis.FromBatch(ds, liveanalysis.Options{})
	gb, wb := resultBytes(t, got), resultBytes(t, want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("%s: streaming analysis differs from batch\n got: %.300s\nwant: %.300s", label, gb, wb)
	}
}

// teeSink forwards records to an analysis-enabled ingester while
// building the same prefix as a Dataset, so any barrier mid-replay can
// be checked against the batch oracle over exactly the records the
// stream has consumed.
type teeSink struct {
	ing *stream.Ingester
	ds  *atlasdata.Dataset
	n   int
	at  func(n int)
}

func (s *teeSink) tick() { s.n++; s.at(s.n) }

func (s *teeSink) Meta(m atlasdata.ProbeMeta) error {
	if err := s.ing.Meta(m); err != nil {
		return err
	}
	s.ds.Probes[m.ID] = m
	s.tick()
	return nil
}

func (s *teeSink) ConnLog(e atlasdata.ConnLogEntry) error {
	if err := s.ing.ConnLog(e); err != nil {
		return err
	}
	s.ds.ConnLogs[e.Probe] = append(s.ds.ConnLogs[e.Probe], e)
	s.tick()
	return nil
}

func (s *teeSink) KRoot(k atlasdata.KRootRound) error {
	if err := s.ing.KRoot(k); err != nil {
		return err
	}
	s.ds.KRoot[k.Probe] = append(s.ds.KRoot[k.Probe], k)
	s.tick()
	return nil
}

func (s *teeSink) Uptime(u atlasdata.UptimeRecord) error {
	if err := s.ing.Uptime(u); err != nil {
		return err
	}
	s.ds.Uptime[u.Probe] = append(s.ds.Uptime[u.Probe], u)
	s.tick()
	return nil
}

// TestAnalysisReplayEquivalence is the tentpole's correctness anchor:
// across seeds and shard counts, the live analysis at every checkpoint
// barrier — one third in, two thirds in, and at end of stream — must be
// byte-identical to the batch pipeline run over exactly the records
// consumed so far.
func TestAnalysisReplayEquivalence(t *testing.T) {
	cases := []struct {
		seed   uint64
		shards int
	}{
		{seed: 3, shards: 1},
		{seed: 3, shards: 4},
		{seed: 11, shards: 1},
		{seed: 11, shards: 4},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed=%d/shards=%d", tc.seed, tc.shards), func(t *testing.T) {
			ds := recoverWorld(t, tc.seed)
			total := totalRecords(ds)
			barriers := map[int]bool{total / 3: true, total * 2 / 3: true}

			ing := stream.NewIngester(stream.Config{
				Shards: tc.shards, Pfx2AS: ds.Pfx2AS, Analysis: true,
			})
			tee := &teeSink{ing: ing, ds: atlasdata.NewDataset()}
			tee.ds.Pfx2AS = ds.Pfx2AS
			tee.at = func(n int) {
				if !barriers[n] {
					return
				}
				got, err := ing.Analysis()
				if err != nil {
					t.Fatal(err)
				}
				requireAnalysisEquals(t, fmt.Sprintf("barrier at record %d", n), got, tee.ds)
			}
			if err := sim.ReplayDataset(ds, tee); err != nil {
				t.Fatal(err)
			}
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
			// End of stream exercises the closed-quiescent path.
			got, err := ing.Analysis()
			if err != nil {
				t.Fatal(err)
			}
			requireAnalysisEquals(t, "end of stream", got, ds)
		})
	}
}

// TestAnalysisRecoverEquivalence kills an analysis-enabled durable run
// mid-stream (optionally tearing the WAL tail), recovers, resumes the
// producer from its cursors, and demands the final analysis match both
// an uninterrupted run and the batch oracle — detector state must ride
// checkpoints and WAL replay without drifting.
func TestAnalysisRecoverEquivalence(t *testing.T) {
	cases := []struct {
		seed   uint64
		shards int
		damage string
	}{
		{seed: 3, shards: 1, damage: "none"},
		{seed: 3, shards: 1, damage: "chop"},
		{seed: 11, shards: 4, damage: "none"},
		{seed: 11, shards: 4, damage: "chop"},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed=%d/shards=%d/damage=%s", tc.seed, tc.shards, tc.damage), func(t *testing.T) {
			ds := recoverWorld(t, tc.seed)
			stopAt := totalRecords(ds) * 2 / 5
			dir := t.TempDir()
			cfg := durableConfig(ds, dir, tc.shards)
			cfg.Analysis = true

			// Uninterrupted in-memory reference.
			ref := stream.NewIngester(stream.Config{
				Shards: tc.shards, Pfx2AS: ds.Pfx2AS, Analysis: true,
			})
			if err := sim.ReplayDataset(ds, ref); err != nil {
				t.Fatal(err)
			}
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}
			want, err := ref.Analysis()
			if err != nil {
				t.Fatal(err)
			}

			// Durable run dies ~40% in; recover, resume, finish.
			ing, _, err := stream.Recover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.ReplayDataset(ds, &stopAfter{ing: ing, left: stopAt}); !errors.Is(err, errStop) {
				t.Fatalf("replay ended with %v, want errStop", err)
			}
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
			if tc.damage != "none" {
				damageLastSegment(t, dir+"/shard-000", tc.damage)
			}
			rec, st, err := stream.Recover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.CheckpointProbes == 0 {
				t.Error("no probes restored from checkpoints; detector restore path not exercised")
			}
			if err := sim.ReplayDataset(ds, newSkipSink(rec)); err != nil {
				t.Fatal(err)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
			got, err := rec.Analysis()
			if err != nil {
				t.Fatal(err)
			}
			gb, wb := resultBytes(t, got), resultBytes(t, want)
			if !bytes.Equal(gb, wb) {
				t.Errorf("post-recovery analysis differs from uninterrupted run\n got: %.300s\nwant: %.300s", gb, wb)
			}
			requireAnalysisEquals(t, "post-recovery vs batch", got, ds)
		})
	}
}

// TestAnalysisDisabled pins the gate: without Config.Analysis the calls
// fail with ErrAnalysisDisabled and ingest carries no detectors.
func TestAnalysisDisabled(t *testing.T) {
	ing := stream.NewIngester(stream.Config{Shards: 1})
	defer ing.Close()
	if _, err := ing.Analysis(); !errors.Is(err, stream.ErrAnalysisDisabled) {
		t.Fatalf("Analysis on a disabled ingester: %v, want ErrAnalysisDisabled", err)
	}
}

// TestAnalysisEdgeProbes hand-builds the degenerate shapes: a probe
// that never changed, a probe with exactly one change (too few closed
// durations for any periodic classification), and a probe with metadata
// but no records. The streaming result must match the batch oracle and
// the shapes must land where the paper's pipeline puts them.
func TestAnalysisEdgeProbes(t *testing.T) {
	ds := atlasdata.NewDataset()
	base := simclock.StudyStart

	// Probe 1: one IPv4 address all year — never changed, no events.
	ds.Probes[1] = atlasdata.ProbeMeta{ID: 1, Country: "DE", Version: atlasdata.V3, ConnectedDays: 200}
	ds.ConnLogs[1] = []atlasdata.ConnLogEntry{
		{Probe: 1, Start: base, End: base.Add(200 * simclock.Day), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.1.0.1")},
	}

	// Probe 2: exactly one change — analyzable, one churn bucket, zero
	// closed interior durations.
	ds.Probes[2] = atlasdata.ProbeMeta{ID: 2, Country: "DE", Version: atlasdata.V3, ConnectedDays: 120}
	ds.ConnLogs[2] = []atlasdata.ConnLogEntry{
		{Probe: 2, Start: base, End: base.Add(60 * simclock.Day), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.2.0.1")},
		{Probe: 2, Start: base.Add(60*simclock.Day + simclock.Minute), End: base.Add(120 * simclock.Day), Family: atlasdata.V4, Addr: ip4.MustParseAddr("10.2.0.2")},
	}

	// Probe 3: registered, silent.
	ds.Probes[3] = atlasdata.ProbeMeta{ID: 3, Country: "FR", Version: atlasdata.V3, ConnectedDays: 100}

	ing := stream.NewIngester(stream.Config{Shards: 2, Pfx2AS: ds.Pfx2AS, Analysis: true})
	if err := sim.ReplayDataset(ds, ing); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ing.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	requireAnalysisEquals(t, "edge probes", got, ds)

	if got.Probes != 1 {
		t.Errorf("analyzable probes = %d, want 1 (only the one-change probe)", got.Probes)
	}
	if got.Table7All.Changes != 1 {
		t.Errorf("Table 7 changes = %d, want 1", got.Table7All.Changes)
	}
	if len(got.Table5) != 0 {
		t.Errorf("Table 5 rows = %d, want 0 (one change yields no durations)", len(got.Table5))
	}
	if len(got.Churn) != 1 || got.Churn[0].Row.Changes != 1 {
		t.Errorf("churn = %+v, want one single-change window", got.Churn)
	}
}

// TestAnalysisEphemeralV6World turns the dual-stack knob up (the X4
// world: most probes show ephemeral IPv6 alongside IPv4): dual-stack
// probes are excluded from the paper tables but their IPv4 changes
// still count in the churn series, and the stream must agree with the
// batch oracle on both facts at every shard count.
func TestAnalysisEphemeralV6World(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Seed = 21
	cfg.Scale = 0.04
	cfg.DualStackFrac = 0.8
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := world.Dataset
	res := core.Filter(ds)
	if res.Count(core.CatDualStack) == 0 {
		t.Fatal("world has no dual-stack probes; knob ineffective")
	}

	var results [][]byte
	for _, shards := range []int{1, 4} {
		ing := stream.NewIngester(stream.Config{Shards: shards, Pfx2AS: ds.Pfx2AS, Analysis: true})
		if err := sim.ReplayDataset(ds, ing); err != nil {
			t.Fatal(err)
		}
		if err := ing.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ing.Analysis()
		if err != nil {
			t.Fatal(err)
		}
		requireAnalysisEquals(t, fmt.Sprintf("x4 world, %d shards", shards), got, ds)
		if got.Probes != len(res.GeoProbes) {
			t.Errorf("%d shards: analyzable probes = %d, want %d", shards, got.Probes, len(res.GeoProbes))
		}
		if len(got.Churn) == 0 {
			t.Errorf("%d shards: churn series empty despite IPv4 changes", shards)
		}
		results = append(results, resultBytes(t, got))
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("analysis differs between shard counts")
	}
}

// BenchmarkLiveAnalysis measures the ingest cost of the detectors: the
// same world streamed with analysis off and on (the <5% overhead budget
// in EXPERIMENTS.md), plus the cost of one analysis fold.
func BenchmarkLiveAnalysis(b *testing.B) {
	ds := recoverWorld(b, 5)
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("ingest/analysis=%v", on), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ing := stream.NewIngester(stream.Config{Shards: 4, Pfx2AS: ds.Pfx2AS, Analysis: on})
				if err := sim.ReplayDataset(ds, ing); err != nil {
					b.Fatal(err)
				}
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("fold", func(b *testing.B) {
		ing := stream.NewIngester(stream.Config{Shards: 4, Pfx2AS: ds.Pfx2AS, Analysis: true})
		if err := sim.ReplayDataset(ds, ing); err != nil {
			b.Fatal(err)
		}
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ing.Analysis(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
