package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/serve"
	"dynaddr/internal/stream"
)

// feedPartitioned drives the serve-tier fixture through a set of
// partition-owning ingesters, routing each record to its owner by
// stream.PartitionOf — exactly what the cluster coordinator does over
// HTTP. ownerOf maps partition → ingester index.
func feedPartitioned(t *testing.T, ings []*stream.Ingester, ownerOf []int) {
	t.Helper()
	route := func(id atlasdata.ProbeID) *stream.Ingester {
		return ings[ownerOf[stream.PartitionOf(id, len(ownerOf))]]
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	countries := []string{"DE", "US", "JP", "BR", "ZA", "AU", "FR", "NL", "GB", "IT", "ES", "SE"}
	for i, cc := range countries {
		id := atlasdata.ProbeID(100 + i)
		ing := route(id)
		must(ing.Meta(atlasdata.ProbeMeta{ID: id, Country: cc, Version: atlasdata.V3, ConnectedDays: 150 + float64(i)}))
		a := fmt.Sprintf("10.0.%d.1", i)
		b := fmt.Sprintf("10.0.%d.2", i)
		must(ing.ConnLog(conn(id, at(0), at(20+i), a)))
		must(ing.ConnLog(conn(id, at(24+i), at(50), b)))
		// Rejected (overlaps the first session): consumed but not applied,
		// so it must still advance the cluster-summed Seq.
		must(ing.ConnLog(conn(id, at(1), at(2), a)))
		must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(21), Sent: 3, Success: 0, LTS: 600}))
		must(ing.KRoot(atlasdata.KRootRound{Probe: id, Timestamp: at(22), Sent: 3, Success: 3, LTS: 30}))
		must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(30), Uptime: 30 * 3600}))
		must(ing.Uptime(atlasdata.UptimeRecord{Probe: id, Timestamp: at(40), Uptime: 60}))
	}
}

// TestClusterVersionInvariance is the cluster counterpart of
// TestTierEquivalence: the same records, partitioned over 1, 2 and 5
// peers, must merge to the same cluster-summed stream.Version and the
// same rendered artifacts as a single node running all partitions —
// peer views round-tripped through JSON, because that is how they
// travel in production.
func TestClusterVersionInvariance(t *testing.T) {
	const total = 8
	ctx := context.Background()

	// Single-node reference: one ingester owning every partition.
	ref := stream.NewIngester(stream.Config{Shards: total, Pfx2AS: testStore(t), Analysis: true})
	defer ref.Close()
	feedPartitioned(t, []*stream.Ingester{ref}, make([]int, total))
	refSnap, err := ref.SnapshotContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refSummary, err := serve.RenderSummary(refSnap)
	if err != nil {
		t.Fatal(err)
	}
	refAnalysisRes, refAnalysisVer, err := ref.AnalysisVersioned(ctx)
	if err != nil {
		t.Fatal(err)
	}
	refAnalysis, err := serve.RenderAnalysis(refAnalysisRes)
	if err != nil {
		t.Fatal(err)
	}

	for _, peers := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("peers=%d", peers), func(t *testing.T) {
			owned := make([][]int, peers)
			ownerOf := make([]int, total)
			for p := 0; p < total; p++ {
				owned[p%peers] = append(owned[p%peers], p)
				ownerOf[p] = p % peers
			}
			ings := make([]*stream.Ingester, peers)
			for i := range ings {
				ings[i] = stream.NewIngester(stream.Config{
					TotalPartitions: total,
					OwnedPartitions: owned[i],
					Pfx2AS:          testStore(t),
					Analysis:        true,
				})
				defer ings[i].Close()
			}
			feedPartitioned(t, ings, ownerOf)

			views := make([]*stream.PeerView, peers)
			aviews := make([]*stream.AnalysisPeerView, peers)
			for i, ing := range ings {
				pv, err := ing.PeerView(ctx)
				if err != nil {
					t.Fatal(err)
				}
				views[i] = jsonRoundTrip(t, pv, new(stream.PeerView))
				av, err := ing.AnalysisPeerView(ctx)
				if err != nil {
					t.Fatal(err)
				}
				aviews[i] = jsonRoundTrip(t, av, new(stream.AnalysisPeerView))
			}

			merged := stream.MergePeerViews(views, total)
			if merged.Version != refSnap.Version {
				t.Errorf("cluster-summed version %+v, single-node %+v", merged.Version, refSnap.Version)
			}
			sum, err := serve.RenderSummary(merged)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sum, refSummary) {
				t.Errorf("merged summary differs from single-node render:\n%s\nvs\n%s", sum, refSummary)
			}

			ares, aver := stream.MergeAnalysisPeerViews(aviews)
			if aver != refAnalysisVer {
				t.Errorf("merged analysis version %+v, single-node %+v", aver, refAnalysisVer)
			}
			ab, err := serve.RenderAnalysis(ares)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ab, refAnalysis) {
				t.Errorf("merged analysis differs from single-node render (lengths %d vs %d)", len(ab), len(refAnalysis))
			}
		})
	}
}

// jsonRoundTrip marshals v and decodes it into out, failing the test on
// any loss the type's JSON mapping can detect.
func jsonRoundTrip[T any](t *testing.T, v *T, out *T) *T {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPartitionMove pins the rebalance primitive end to end at the
// stream level: release a partition from one in-memory ingester, adopt
// it on another, and the merged cluster state — version included — is
// unchanged.
func TestPartitionMove(t *testing.T) {
	const total = 4
	ctx := context.Background()

	a := stream.NewIngester(stream.Config{TotalPartitions: total, OwnedPartitions: []int{0, 1, 2}, Pfx2AS: testStore(t)})
	defer a.Close()
	b := stream.NewIngester(stream.Config{TotalPartitions: total, OwnedPartitions: []int{3}, Pfx2AS: testStore(t)})
	defer b.Close()
	ownerOf := []int{0, 0, 0, 1}
	feedPartitioned(t, []*stream.Ingester{a, b}, ownerOf)

	before := stream.MergePeerViews(collectViews(t, ctx, a, b), total)

	st, err := a.ReleasePartition(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.OwnedPartitions(); len(got) != 2 {
		t.Fatalf("after release a owns %v", got)
	}
	// The state ships as JSON between peers; round-trip it like the
	// coordinator does.
	st = jsonRoundTrip(t, st, new(stream.PartitionState))
	if err := b.AdoptPartition(st); err != nil {
		t.Fatal(err)
	}
	if got := b.OwnedPartitions(); len(got) != 2 {
		t.Fatalf("after adopt b owns %v", got)
	}

	after := stream.MergePeerViews(collectViews(t, ctx, a, b), total)
	if after.Version != before.Version {
		t.Errorf("version changed across move: %+v → %+v", before.Version, after.Version)
	}
	sumBefore, err := serve.RenderSummary(before)
	if err != nil {
		t.Fatal(err)
	}
	sumAfter, err := serve.RenderSummary(after)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sumBefore, sumAfter) {
		t.Error("summary changed across a partition move")
	}

	// The moved partition keeps working on its new owner: duplicate of a
	// released-partition probe routes to b now, and a rejects it as
	// unowned.
	var moved atlasdata.ProbeID
	for i := 0; i < 12; i++ {
		id := atlasdata.ProbeID(100 + i)
		if stream.PartitionOf(id, total) == 1 {
			moved = id
			break
		}
	}
	if moved == 0 {
		t.Skip("fixture has no probe in partition 1")
	}
	if err := a.ConnLog(conn(moved, at(60), at(70), "10.0.200.1")); err == nil {
		t.Error("released owner still accepts the moved probe")
	}
	if err := b.ConnLog(conn(moved, at(60), at(70), "10.0.200.1")); err != nil {
		t.Errorf("new owner rejects the moved probe: %v", err)
	}
}

func collectViews(t *testing.T, ctx context.Context, ings ...*stream.Ingester) []*stream.PeerView {
	t.Helper()
	out := make([]*stream.PeerView, len(ings))
	for i, ing := range ings {
		pv, err := ing.PeerView(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = pv
	}
	return out
}
