package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/simclock"
	"dynaddr/internal/stats"
)

// A checkpoint is one shard's full analysis state, serialized while the
// shard is quiescent (checkpointing runs in the shard goroutine between
// records) and written atomically: temp file, fsync, rename, directory
// sync. A crash mid-checkpoint therefore leaves the previous checkpoint
// intact. Floats round-trip exactly — encoding/json emits the shortest
// representation that parses back to the same float64, and totals are
// stored verbatim rather than re-accumulated — so a state restored from
// checkpoint + WAL replay is byte-identical to one that never crashed.

const (
	checkpointVersion = 1
	checkpointFile    = "checkpoint.json"
)

// shardCheckpoint is the on-disk checkpoint document.
type shardCheckpoint struct {
	Version int `json:"version"`
	Shard   int `json:"shard"`
	// Seq is the last WAL sequence the checkpoint covers; recovery
	// replays from Seq+1.
	Seq uint64 `json:"seq"`
	// Generation counts the shard's completed checkpoints — this document
	// is number Generation. The version stays at 1: old checkpoints
	// without the field restore generation 0, which only means the shard's
	// cache keys restart (they remain unique within the process).
	Generation   uint64           `json:"generation,omitempty"`
	Counts       RecordCounts     `json:"counts"`
	SessionsByAS map[uint32]int64 `json:"sessions_by_as,omitempty"`
	// Churn/ChurnOutside carry the shard's live-analysis churn table in
	// sparse form (non-empty day cells, ascending). Present only when
	// the ingester runs with Config.Analysis; like the per-probe
	// detector state, an old checkpoint without them restores an empty
	// table — a degradation, not an incompatibility.
	Churn        []liveanalysis.ChurnCell `json:"churn,omitempty"`
	ChurnOutside *core.PrefixChangeRow    `json:"churn_outside,omitempty"`
	Probes       []probeStateJSON         `json:"probes"`
}

// spanJSON, addrRunJSON and lossRunJSON mirror the unexported state
// structs field for field.
type spanJSON struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

type addrRunJSON struct {
	Active  bool   `json:"active,omitempty"`
	Bounded bool   `json:"bounded,omitempty"`
	Addr    uint32 `json:"addr,omitempty"`
	Start   int64  `json:"start,omitempty"`
	End     int64  `json:"end,omitempty"`
}

type lossRunJSON struct {
	Active   bool  `json:"active,omitempty"`
	Start    int64 `json:"start,omitempty"`
	End      int64 `json:"end,omitempty"`
	FirstLTS int64 `json:"first_lts,omitempty"`
	LastLTS  int64 `json:"last_lts,omitempty"`
	Rounds   int   `json:"rounds,omitempty"`
}

// probeStateJSON mirrors probeState exactly; every field the state
// machines read must round-trip, or recovery diverges from the
// uninterrupted run.
type probeStateJSON struct {
	ID   atlasdata.ProbeID    `json:"id"`
	Meta *atlasdata.ProbeMeta `json:"meta,omitempty"`

	MetaCount   int64 `json:"meta_count,omitempty"`
	ConnCount   int64 `json:"conn_count,omitempty"`
	KRootCount  int64 `json:"kroot_count,omitempty"`
	UptimeCount int64 `json:"uptime_count,omitempty"`

	RawEntries    int            `json:"raw_entries,omitempty"`
	V4Count       int            `json:"v4,omitempty"`
	V6Count       int            `json:"v6,omitempty"`
	ConnectedSecs int64          `json:"connected_secs,omitempty"`
	Sessions      int64          `json:"sessions,omitempty"`
	AllV4Single   bool           `json:"all_v4_single"`
	FirstV4Addr   uint32         `json:"first_v4,omitempty"`
	RunCount      map[uint32]int `json:"run_count,omitempty"`
	RunPrevAddr   uint32         `json:"run_prev,omitempty"`
	RunTotal      int            `json:"run_total,omitempty"`

	Stripped      bool        `json:"stripped,omitempty"`
	PrevSet       bool        `json:"prev_set,omitempty"`
	PrevIsV4      bool        `json:"prev_is_v4,omitempty"`
	PrevAddr      uint32      `json:"prev_addr,omitempty"`
	PrevEnd       int64       `json:"prev_end,omitempty"`
	LastConnStart int64       `json:"last_conn_start,omitempty"`
	LastConnEnd   int64       `json:"last_conn_end,omitempty"`
	Seg           addrRunJSON `json:"seg"`

	Changes int64           `json:"changes,omitempty"`
	TTF     *stats.Weighted `json:"ttf,omitempty"`

	HomeASN        uint32 `json:"home_asn,omitempty"`
	HomeConsistent bool   `json:"home_consistent"`
	MultiAS        bool   `json:"multi_as,omitempty"`

	HasGap        bool       `json:"has_gap,omitempty"`
	LastGap       spanJSON   `json:"last_gap"`
	LastGapLinked bool       `json:"last_gap_linked,omitempty"`
	OutageLinked  int64      `json:"outage_linked,omitempty"`
	RecentOutages []spanJSON `json:"recent_outages,omitempty"`
	RecentReboots []int64    `json:"recent_reboots,omitempty"`

	Loss           lossRunJSON `json:"loss"`
	NetworkOutages int64       `json:"network_outages,omitempty"`
	LastKRoot      int64       `json:"last_kroot,omitempty"`
	KRootSeen      bool        `json:"kroot_seen,omitempty"`

	UpSeen     bool  `json:"up_seen,omitempty"`
	PrevBoot   int64 `json:"prev_boot,omitempty"`
	LastUptime int64 `json:"last_uptime,omitempty"`
	Reboots    int64 `json:"reboots,omitempty"`

	Rejected int64 `json:"rejected,omitempty"`

	// An is the probe's live-analysis detector state, present only when
	// the ingester runs with Config.Analysis. The version stays at 1:
	// an old checkpoint without this field restores an empty detector
	// (the analysis then covers only post-upgrade records), and an
	// analysis-off ingester ignores the field — both are degradations,
	// not incompatibilities.
	An *detectorJSON `json:"analysis,omitempty"`
}

// detectorJSON mirrors liveanalysis.Detector's exported fields. The
// core event types marshal through their exported fields (simclock
// times are integers, hours are float64s that round-trip exactly, and
// the churn cells are an ordered slice), so the document stays
// deterministic for the recovery byte-equality tests.
type detectorJSON struct {
	RawHours   []float64               `json:"raw_hours,omitempty"`
	Gaps       []liveanalysis.GapEvent `json:"gaps,omitempty"`
	Networks   []core.NetworkOutage    `json:"networks,omitempty"`
	Reboots    []core.Reboot           `json:"reboots,omitempty"`
	RebootGaps []core.RebootGap        `json:"reboot_gaps,omitempty"`
	Prefix     core.PrefixChangeRow    `json:"prefix"`
	Rounds     []simclock.Time         `json:"rounds,omitempty"`
	LastUptime simclock.Time           `json:"last_uptime,omitempty"`
}

func marshalProbeState(ps *probeState) probeStateJSON {
	j := probeStateJSON{
		ID: ps.id,

		MetaCount:   ps.metaCount,
		ConnCount:   ps.connCount,
		KRootCount:  ps.kRootCount,
		UptimeCount: ps.uptimeCount,

		RawEntries:    ps.rawEntries,
		V4Count:       ps.v4Count,
		V6Count:       ps.v6Count,
		ConnectedSecs: ps.connectedSecs,
		Sessions:      ps.sessions,
		AllV4Single:   ps.allV4Single,
		FirstV4Addr:   uint32(ps.firstV4Addr),
		RunPrevAddr:   ps.runPrevAddr,
		RunTotal:      ps.runTotal,

		Stripped:      ps.stripped,
		PrevSet:       ps.prevSet,
		PrevIsV4:      ps.prevIsV4,
		PrevAddr:      uint32(ps.prevAddr),
		PrevEnd:       int64(ps.prevEnd),
		LastConnStart: int64(ps.lastConnStart),
		LastConnEnd:   int64(ps.lastConnEnd),
		Seg: addrRunJSON{
			Active:  ps.seg.active,
			Bounded: ps.seg.bounded,
			Addr:    uint32(ps.seg.addr),
			Start:   int64(ps.seg.start),
			End:     int64(ps.seg.end),
		},

		Changes: ps.changes,

		HomeASN:        uint32(ps.homeASN),
		HomeConsistent: ps.homeConsistent,
		MultiAS:        ps.multiAS,

		HasGap:        ps.hasGap,
		LastGap:       spanJSON{From: int64(ps.lastGap.from), To: int64(ps.lastGap.to)},
		LastGapLinked: ps.lastGapLinked,
		OutageLinked:  ps.outageLinked,

		Loss: lossRunJSON{
			Active:   ps.loss.active,
			Start:    int64(ps.loss.start),
			End:      int64(ps.loss.end),
			FirstLTS: ps.loss.firstLTS,
			LastLTS:  ps.loss.lastLTS,
			Rounds:   ps.loss.rounds,
		},
		NetworkOutages: ps.networkOutages,
		LastKRoot:      int64(ps.lastKRoot),
		KRootSeen:      ps.kRootSeen,

		UpSeen:     ps.upSeen,
		PrevBoot:   int64(ps.prevBoot),
		LastUptime: int64(ps.lastUptime),
		Reboots:    ps.reboots,

		Rejected: ps.rejected,
	}
	if ps.hasMeta {
		m := ps.meta
		j.Meta = &m
	}
	if len(ps.runCount) > 0 {
		j.RunCount = ps.runCount
	}
	if ps.ttf.Len() > 0 {
		j.TTF = &ps.ttf
	}
	for _, o := range ps.recentOutages {
		j.RecentOutages = append(j.RecentOutages, spanJSON{From: int64(o.from), To: int64(o.to)})
	}
	for _, t := range ps.recentReboots {
		j.RecentReboots = append(j.RecentReboots, int64(t))
	}
	if det := ps.det; det != nil {
		j.An = &detectorJSON{
			RawHours:   det.RawHours,
			Gaps:       det.Gaps,
			Networks:   det.Networks,
			Reboots:    det.Reboots,
			RebootGaps: det.RebootGaps,
			Prefix:     det.Prefix,
			Rounds:     det.Rounds,
			LastUptime: det.LastUptime,
		}
	}
	return j
}

func unmarshalProbeState(j probeStateJSON, churn *liveanalysis.ChurnTable) *probeState {
	ps := newProbeState(j.ID, churn)
	if j.Meta != nil {
		ps.setMeta(*j.Meta)
	}
	ps.metaCount = j.MetaCount
	ps.connCount = j.ConnCount
	ps.kRootCount = j.KRootCount
	ps.uptimeCount = j.UptimeCount

	ps.rawEntries = j.RawEntries
	ps.v4Count = j.V4Count
	ps.v6Count = j.V6Count
	ps.connectedSecs = j.ConnectedSecs
	ps.sessions = j.Sessions
	ps.allV4Single = j.AllV4Single
	ps.firstV4Addr = ip4.Addr(j.FirstV4Addr)
	if j.RunCount != nil {
		ps.runCount = j.RunCount
	}
	ps.runPrevAddr = j.RunPrevAddr
	ps.runTotal = j.RunTotal

	ps.stripped = j.Stripped
	ps.prevSet = j.PrevSet
	ps.prevIsV4 = j.PrevIsV4
	ps.prevAddr = ip4.Addr(j.PrevAddr)
	ps.prevEnd = simclock.Time(j.PrevEnd)
	ps.lastConnStart = simclock.Time(j.LastConnStart)
	ps.lastConnEnd = simclock.Time(j.LastConnEnd)
	ps.seg = addrRun{
		active:  j.Seg.Active,
		bounded: j.Seg.Bounded,
		addr:    ip4.Addr(j.Seg.Addr),
		start:   simclock.Time(j.Seg.Start),
		end:     simclock.Time(j.Seg.End),
	}

	ps.changes = j.Changes
	if j.TTF != nil {
		ps.ttf = *j.TTF
	}

	ps.homeASN = asdb.ASN(j.HomeASN)
	ps.homeConsistent = j.HomeConsistent
	ps.multiAS = j.MultiAS

	ps.hasGap = j.HasGap
	ps.lastGap = span{from: simclock.Time(j.LastGap.From), to: simclock.Time(j.LastGap.To)}
	ps.lastGapLinked = j.LastGapLinked
	ps.outageLinked = j.OutageLinked
	for _, o := range j.RecentOutages {
		ps.recentOutages = append(ps.recentOutages, span{from: simclock.Time(o.From), to: simclock.Time(o.To)})
	}
	for _, t := range j.RecentReboots {
		ps.recentReboots = append(ps.recentReboots, simclock.Time(t))
	}

	ps.loss = lossRun{
		active:   j.Loss.Active,
		start:    simclock.Time(j.Loss.Start),
		end:      simclock.Time(j.Loss.End),
		firstLTS: j.Loss.FirstLTS,
		lastLTS:  j.Loss.LastLTS,
		rounds:   j.Loss.Rounds,
	}
	ps.networkOutages = j.NetworkOutages
	ps.lastKRoot = simclock.Time(j.LastKRoot)
	ps.kRootSeen = j.KRootSeen

	ps.upSeen = j.UpSeen
	ps.prevBoot = simclock.Time(j.PrevBoot)
	ps.lastUptime = simclock.Time(j.LastUptime)
	ps.reboots = j.Reboots

	ps.rejected = j.Rejected

	if ps.det != nil && j.An != nil {
		det := ps.det
		det.RawHours = j.An.RawHours
		det.Gaps = j.An.Gaps
		det.Networks = j.An.Networks
		det.Reboots = j.An.Reboots
		det.RebootGaps = j.An.RebootGaps
		det.Prefix = j.An.Prefix
		det.Rounds = j.An.Rounds
		det.LastUptime = j.An.LastUptime
		det.Restore()
	}
	return ps
}

// buildCheckpoint serializes the shard's current state under the last
// appended sequence. Runs in the shard goroutine, so the state is
// quiescent.
func (s *shard) buildCheckpoint() *shardCheckpoint {
	ck := &shardCheckpoint{
		Version:    checkpointVersion,
		Shard:      s.index,
		Seq:        s.lastSeq,
		Generation: s.gen,
		Counts:     s.counts,
	}
	if len(s.sessionsByAS) > 0 {
		ck.SessionsByAS = make(map[uint32]int64, len(s.sessionsByAS))
		for asn, n := range s.sessionsByAS {
			ck.SessionsByAS[asn] = n
		}
	}
	if s.churn != nil {
		ck.Churn = s.churn.Cells()
		outside := s.churn.Outside()
		ck.ChurnOutside = &outside
	}
	ids := make([]atlasdata.ProbeID, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ck.Probes = make([]probeStateJSON, 0, len(ids))
	for _, id := range ids {
		ck.Probes = append(ck.Probes, marshalProbeState(s.states[id]))
	}
	return ck
}

// restoreCheckpoint loads a checkpoint document into a freshly
// allocated shard (before its goroutine starts).
func (s *shard) restoreCheckpoint(ck *shardCheckpoint) {
	s.counts = ck.Counts
	s.gen = ck.Generation
	for asn, n := range ck.SessionsByAS {
		s.sessionsByAS[asn] = n
	}
	if s.churn != nil {
		var outside core.PrefixChangeRow
		if ck.ChurnOutside != nil {
			outside = *ck.ChurnOutside
		}
		s.churn.Restore(ck.Churn, outside)
	}
	for _, j := range ck.Probes {
		s.states[j.ID] = unmarshalProbeState(j, s.churn)
	}
}

// writeCheckpoint atomically replaces dir's checkpoint file.
func writeCheckpoint(dir string, ck *shardCheckpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// loadCheckpoint reads dir's checkpoint; a missing file is (nil, nil) —
// the shard simply starts empty and replays its whole WAL.
func loadCheckpoint(dir string) (*shardCheckpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	ck := &shardCheckpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("stream: corrupt checkpoint in %s: %w", dir, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d in %s, want %d", ck.Version, dir, checkpointVersion)
	}
	return ck, nil
}

// syncDir fsyncs a directory so renames and removals survive a crash;
// failure is tolerated (directory fsync is advisory on some systems).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
