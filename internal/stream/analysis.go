package stream

import (
	"context"
	"errors"
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/liveanalysis"
)

// ErrAnalysisDisabled is returned by Analysis calls when the ingester
// was built without Config.Analysis.
var ErrAnalysisDisabled = errors.New("stream: live analysis disabled (Config.Analysis)")

// analysisView is one shard's frozen contribution to a live analysis:
// deep-copied event state for its analyzable probes plus the merged
// churn counters of every probe it owns.
type analysisView struct {
	events []liveanalysis.ProbeEvents // sorted by probe ID
	churn  map[int]core.PrefixChangeRow
	ver    Version
}

// analysisView snapshots the shard's detector state. Called from the
// shard goroutine (in-band marker) or after Close (quiescent). Event
// slices are copied, so the fold can run while the shard keeps
// applying records.
func (s *shard) analysisView() *analysisView {
	v := &analysisView{churn: make(map[int]core.PrefixChangeRow), ver: s.version()}
	// Churn is the raw operational view: every probe counts, analyzable
	// or not, exactly like the batch oracle's sweep over all connection
	// logs. The shard's shared table already holds the merged counters.
	if s.churn != nil {
		s.churn.AccumulateInto(v.churn)
	}
	ids := make([]atlasdata.ProbeID, 0, len(s.states))
	for id := range s.states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ps := s.states[id]
		if ps.det == nil {
			continue
		}
		// Events feed the paper tables, which exist only for probes the
		// Table 2 pipeline admits.
		if !ps.hasMeta || ps.category() != core.CatAnalyzable {
			continue
		}
		v.events = append(v.events, ps.events())
	}
	return v
}

// events freezes the probe's detector state into an immutable
// ProbeEvents. The open loss run, if any, is finalized under the batch
// end-of-input rule — DetectNetworkOutages closes its trailing run when
// the input ends, and a snapshot barrier is exactly an end-of-input for
// the records seen so far.
func (ps *probeState) events() liveanalysis.ProbeEvents {
	det := ps.det
	ev := liveanalysis.ProbeEvents{
		Probe:      ps.id,
		MultiAS:    ps.multiAS,
		V3:         ps.meta.Version == atlasdata.V3,
		HasChanges: ps.changes > 0,
		RawHours:   append([]float64(nil), det.RawHours...),
		Gaps:       det.CoreGaps(ps.id),
		Networks:   append([]core.NetworkOutage(nil), det.Networks...),
		Reboots:    append([]core.Reboot(nil), det.Reboots...),
		RebootGaps: append([]core.RebootGap(nil), det.RebootGaps...),
		Prefix:     det.Prefix,
	}
	if ps.homeConsistent && ps.homeASN != 0 {
		ev.ASN = uint32(ps.homeASN)
	}
	if n, ok := ps.qualifyLossRun(ps.loss); ok {
		ev.Networks = append(ev.Networks, n)
	}
	return ev
}

// Analysis computes the live paper answers — Tables 5-7, Figures 6-8,
// and the churn series — from the current stream position. Like
// Snapshot it is a consistent barrier: it reflects at least every
// record whose ingest call returned before Analysis was called.
func (in *Ingester) Analysis() (*liveanalysis.Result, error) {
	return in.AnalysisContext(context.Background())
}

// AnalysisContext is Analysis under a context: a caller blocked behind
// full shard buffers gets ctx.Err() on cancellation instead of hanging.
func (in *Ingester) AnalysisContext(ctx context.Context) (*liveanalysis.Result, error) {
	res, _, err := in.AnalysisVersioned(ctx)
	return res, err
}

// AnalysisVersioned is AnalysisContext plus the stream position the
// barrier was taken at, for the serving tier's cache keys.
func (in *Ingester) AnalysisVersioned(ctx context.Context) (*liveanalysis.Result, Version, error) {
	views, err := in.collectAnalysisViews(ctx)
	if err != nil {
		return nil, Version{}, err
	}
	res, ver := mergeAnalysis(views)
	return res, ver, nil
}

// collectAnalysisViews gathers one consistent analysisView per owned
// shard via the in-band analysis barrier (or directly once closed).
func (in *Ingester) collectAnalysisViews(ctx context.Context) ([]*analysisView, error) {
	if !in.cfg.Analysis {
		return nil, ErrAnalysisDisabled
	}
	in.mu.RLock()
	shards := in.shards
	if in.closed {
		in.mu.RUnlock()
		// Shard goroutines have exited; state is quiescent.
		views := make([]*analysisView, 0, len(shards))
		for _, s := range shards {
			views = append(views, s.analysisView())
		}
		return views, nil
	}
	// Buffered to the full shard count so markers already sent keep a
	// reply slot even if the collection is abandoned on cancellation.
	ch := make(chan *analysisView, len(shards))
	for _, s := range shards {
		select {
		case s.in <- record{kind: kindAnalysis, analysis: ch}:
		case <-ctx.Done():
			in.mu.RUnlock()
			return nil, ctx.Err()
		}
	}
	in.mu.RUnlock()
	views := make([]*analysisView, 0, len(shards))
	for range shards {
		select {
		case v := <-ch:
			views = append(views, v)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return views, nil
}

// mergeAnalysis combines the shard contributions — events re-sorted
// into global probe-ID order (the batch pipeline's probe discipline),
// churn counters summed — and runs the query-time fold.
func mergeAnalysis(views []*analysisView) (*liveanalysis.Result, Version) {
	var events []liveanalysis.ProbeEvents
	var ver Version
	churn := make(map[int]core.PrefixChangeRow)
	for _, v := range views {
		events = append(events, v.events...)
		ver.add(v.ver)
		for day, row := range v.churn {
			r := churn[day]
			r.Accumulate(row)
			churn[day] = r
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Probe < events[j].Probe })
	return liveanalysis.Compute(events, churn, liveanalysis.Options{}), ver
}
