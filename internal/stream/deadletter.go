package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/obs"
	"dynaddr/internal/wal"
)

// Dead-letter quarantine: a record that fails decode, validation, or
// apply inside an otherwise-good batch is framed into a per-shard
// quarantine WAL with its rejection reason instead of failing the
// batch. The quarantine log reuses the ordinary WAL machinery (same
// framing, same torn-tail repair) in a "deadletter" subdirectory of
// the shard's WAL directory, so churnctl can drain and replay it with
// the same reader recovery uses. In-memory ingesters keep counts and
// samples but no durable log.
//
// Quarantine entries are at-least-once: a crash between the dead-letter
// append and the producer's acknowledgement can duplicate an entry
// after resume, which only ever overstates the quarantine — never the
// applied analysis state.

// dlSampleCap bounds the per-shard ring of recent quarantine samples
// served by the dead-letter endpoint.
const dlSampleCap = 8

// DeadLetterEntry is one quarantined record, as framed into the
// quarantine WAL and surfaced by GET /api/v1/live/deadletter samples.
type DeadLetterEntry struct {
	// Kind labels the record stream ("meta", "connlog", "kroot",
	// "uptime") or "frame" when the payload never decoded far enough to
	// tell.
	Kind string `json:"kind"`
	// Reason is the rejection class: "decode", "validate",
	// "unknown-kind", or "encode". Apply-time order rejections are
	// deliberately not quarantined — at-least-once redelivery makes
	// stale duplicates routine, and they are counted in the rejected
	// metrics instead.
	Reason string `json:"reason"`
	// Detail is the underlying error text, when there was one.
	Detail string `json:"detail,omitempty"`
	// Probe is the record's probe ID when it decoded far enough to have
	// one.
	Probe atlasdata.ProbeID `json:"probe,omitempty"`
	// Payload is the quarantined record's raw bytes. When Replayable is
	// true it is in the WAL record encoding (kind byte + canonical text)
	// and churnctl can decode and re-submit it; otherwise it is the
	// undecodable wire payload, kept for inspection.
	Payload    []byte `json:"payload,omitempty"`
	Replayable bool   `json:"replayable"`
}

// Record decodes a replayable entry back into its typed record and
// feeds it to sink. Non-replayable entries return an error.
func (e DeadLetterEntry) Replay(sink ReplaySink) error {
	if !e.Replayable {
		return fmt.Errorf("stream: dead-letter entry (%s/%s) is not replayable", e.Kind, e.Reason)
	}
	rec, err := decodeRecord(e.Payload)
	if err != nil {
		return err
	}
	switch rec.kind {
	case kindMeta:
		return sink.Meta(rec.meta)
	case kindConn:
		return sink.ConnLog(rec.conn)
	case kindKRoot:
		return sink.KRoot(rec.kroot)
	case kindUptime:
		return sink.Uptime(rec.uptime)
	}
	return fmt.Errorf("stream: dead-letter entry kind %d is not replayable", rec.kind)
}

// ReplaySink is the four-method record sink dead letters are replayed
// into; atlasapi.StreamProducer implements it.
type ReplaySink interface {
	Meta(atlasdata.ProbeMeta) error
	ConnLog(atlasdata.ConnLogEntry) error
	KRoot(atlasdata.KRootRound) error
	Uptime(atlasdata.UptimeRecord) error
}

// DeadLetterSample is one recent quarantined record (payload omitted).
type DeadLetterSample struct {
	Shard  int               `json:"shard"`
	Kind   string            `json:"kind"`
	Reason string            `json:"reason"`
	Probe  atlasdata.ProbeID `json:"probe,omitempty"`
	Detail string            `json:"detail,omitempty"`
}

// DeadLetterStatus is the aggregate quarantine state served by
// GET /api/v1/live/deadletter. Counts are process-lifetime, like
// metrics; the durable quarantine logs persist across restarts and are
// drained with churnctl -deadletter.
type DeadLetterStatus struct {
	Total    int64              `json:"total"`
	ByReason map[string]int64   `json:"by_reason"`
	Samples  []DeadLetterSample `json:"samples"`
}

// quarantineRecord is the in-band payload of a kindQuarantine record:
// the API layer routes undecodable records through the shard channel so
// the shard goroutine stays the only writer of its quarantine log.
type quarantineRecord struct {
	entry DeadLetterEntry
}

// dlState is a shard's quarantine bookkeeping. The log is touched only
// by the shard goroutine; the counters and sample ring are read by the
// dead-letter endpoint from other goroutines, hence the mutex.
type dlState struct {
	mu       sync.Mutex
	total    int64
	byReason map[string]int64
	samples  []DeadLetterSample
	next     int

	log    *wal.Log // lazily opened; nil for in-memory ingesters
	logErr error
}

// note records the entry in the counters and sample ring.
func (d *dlState) note(shard int, e DeadLetterEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.total++
	if d.byReason == nil {
		d.byReason = make(map[string]int64)
	}
	d.byReason[e.Reason]++
	s := DeadLetterSample{Shard: shard, Kind: e.Kind, Reason: e.Reason, Probe: e.Probe, Detail: e.Detail}
	if len(d.samples) < dlSampleCap {
		d.samples = append(d.samples, s)
	} else {
		d.samples[d.next] = s
		d.next = (d.next + 1) % dlSampleCap
	}
}

// addTo merges this shard's quarantine state into st.
func (d *dlState) addTo(st *DeadLetterStatus) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st.Total += d.total
	for r, n := range d.byReason {
		st.ByReason[r] += n
	}
	// Oldest-first: the ring's write position is its oldest element.
	for i := 0; i < len(d.samples); i++ {
		st.Samples = append(st.Samples, d.samples[(d.next+i)%len(d.samples)])
	}
}

// deadLetterDir is where a shard's quarantine WAL lives, under its own
// WAL directory. The main log's segment scan skips subdirectories, so
// the two logs never see each other's frames.
func deadLetterDir(shardDir string) string { return filepath.Join(shardDir, "deadletter") }

// quarantine is the shard-goroutine sink for one dead-lettered record:
// count it, sample it, and best-effort append it to the durable
// quarantine log. Quarantine-log failures are counted but never degrade
// the shard — the main WAL decides that.
func (s *shard) quarantine(e DeadLetterEntry) {
	s.dl.note(s.index, e)
	if s.reg != nil {
		s.reg.Counter("deadletter_records_total",
			"Records quarantined to the dead-letter queue instead of failing their batch.",
			obs.L("reason", e.Reason)).Inc()
	}
	if s.dir == "" {
		return
	}
	if s.dl.log == nil {
		opt := s.walOpt
		opt.FirstSeq = 0
		// The quarantine log is bookkeeping, not the durability path: its
		// appends must not inflate the main WAL's wal_append_total
		// invariant (one append per fed record). deadletter_records_total
		// already counts it.
		opt.Metrics = nil
		log, err := wal.Open(deadLetterDir(s.dir), opt)
		if err != nil {
			s.dl.logErr = err
			s.noteDeadLetterDrop()
			return
		}
		s.dl.log = log
	}
	payload, err := json.Marshal(e)
	if err == nil {
		_, err = s.dl.log.Append(payload)
	}
	if err != nil {
		s.dl.logErr = err
		s.noteDeadLetterDrop()
	}
}

func (s *shard) noteDeadLetterDrop() {
	if s.reg != nil {
		s.reg.Counter("deadletter_dropped_total",
			"Quarantined records lost because the quarantine log could not be written.").Inc()
	}
}

// quarantineRejected dead-letters a record the shard itself rejected
// (encode failure), preserving its bytes in the replayable WAL
// encoding when possible.
func (s *shard) quarantineRejected(rec record, reason, detail string) {
	e := DeadLetterEntry{Kind: kindLabel(rec.kind), Reason: reason, Detail: detail, Probe: recordProbe(rec)}
	if payload, err := encodeRecord(rec); err == nil {
		e.Payload, e.Replayable = payload, true
	}
	s.quarantine(e)
}

func kindLabel(k recordKind) string {
	switch k {
	case kindMeta:
		return "meta"
	case kindConn:
		return "connlog"
	case kindKRoot:
		return "kroot"
	case kindUptime:
		return "uptime"
	}
	return "frame"
}

func recordProbe(rec record) atlasdata.ProbeID {
	switch rec.kind {
	case kindMeta:
		return rec.meta.ID
	case kindConn:
		return rec.conn.Probe
	case kindKRoot:
		return rec.kroot.Probe
	case kindUptime:
		return rec.uptime.Probe
	}
	return 0
}

// DeadLetter aggregates the quarantine counters and recent samples
// across shards. Counts are process-lifetime (recovery replay does not
// re-count entries already in the quarantine logs).
func (in *Ingester) DeadLetter() DeadLetterStatus {
	st := DeadLetterStatus{ByReason: make(map[string]int64)}
	for _, s := range in.shards {
		s.dl.addTo(&st)
	}
	return st
}

// Quarantine routes a record that failed decode or validation at the
// API layer into the dead-letter queue of the probe's shard (shard 0
// when the probe is unknown). The payload is copied; callers may reuse
// their buffer. It fails only the way an ordinary ingest send does —
// closed, cancelled, or degraded shard.
func (in *Ingester) Quarantine(ctx context.Context, kind string, probe atlasdata.ProbeID, reason, detail string, payload []byte) error {
	e := DeadLetterEntry{Kind: kind, Reason: reason, Detail: detail, Probe: probe}
	if len(payload) > 0 {
		e.Payload = append([]byte(nil), payload...)
	}
	return in.send(ctx, probe, record{kind: kindQuarantine, q: &quarantineRecord{entry: e}})
}

// ReadDeadLetters walks the durable quarantine logs under walDir (the
// ingester's Config.WALDir) in shard order, oldest entry first within a
// shard. It reads the directory directly — run it against a stopped
// ingester or accept that concurrent quarantines may be missed.
func ReadDeadLetters(walDir string, fn func(shard int, seq uint64, e DeadLetterEntry) error) error {
	shards, err := shardDirs(walDir)
	if err != nil {
		return err
	}
	for _, sd := range shards {
		err := wal.Replay(deadLetterDir(sd.dir), 0, func(seq uint64, payload []byte) error {
			var e DeadLetterEntry
			if err := json.Unmarshal(payload, &e); err != nil {
				return fmt.Errorf("shard %d dead-letter seq %d: %w", sd.index, seq, err)
			}
			return fn(sd.index, seq, e)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// TruncateDeadLetters removes every shard's drained quarantine log.
// Like ReadDeadLetters it operates on the directory directly, so run
// it only after the owning process has stopped (or accept losing
// entries quarantined between the drain and the truncate).
func TruncateDeadLetters(walDir string) error {
	shards, err := shardDirs(walDir)
	if err != nil {
		return err
	}
	for _, sd := range shards {
		if err := os.RemoveAll(deadLetterDir(sd.dir)); err != nil {
			return err
		}
	}
	return nil
}

type shardDir struct {
	index int
	dir   string
}

func shardDirs(walDir string) ([]shardDir, error) {
	var out []shardDir
	for i := 0; ; i++ {
		dir := filepath.Join(walDir, fmt.Sprintf("shard-%03d", i))
		if _, err := os.Stat(dir); err != nil {
			break
		}
		out = append(out, shardDir{index: i, dir: dir})
	}
	return out, nil
}
