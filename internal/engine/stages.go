package engine

import (
	"fmt"
	"strings"
)

// Stage names one node of the analysis DAG. The graph follows the data
// dependencies of core.Run: filtering feeds everything; the TTF and
// periodic classifications feed the figures; the outage pipeline feeds
// the conditional-probability figures and the link-type inference.
type Stage string

// The analysis stages, in canonical (topological) order.
const (
	// StageFilter runs the Table 2 probe-filtering pipeline.
	StageFilter Stage = "filter"
	// StageTTF computes per-probe total-time-fraction distributions.
	StageTTF Stage = "ttf"
	// StagePeriodic classifies periodic probes and builds Table 5.
	StagePeriodic Stage = "periodic"
	// StageOutage runs the §5 outage pipeline (reboots, firmware,
	// network/power outages, gap association) and Figure 6.
	StageOutage Stage = "outage"
	// StagePac builds the P(ac|·) artefacts: Figures 7-9 and Table 6.
	StagePac Stage = "pac"
	// StageLinkType infers per-AS access technology from outage response.
	StageLinkType Stage = "linktype"
	// StagePrefix computes Table 7's prefix-crossing counters.
	StagePrefix Stage = "prefix"
	// StageFigures builds the TTF figures (1-3) and the hour histograms
	// (Figures 4/5).
	StageFigures Stage = "figures"
	// StageExtensions runs the beyond-the-paper analyses: administrative
	// renumbering, churn turnover, IPv6 ephemerality.
	StageExtensions Stage = "extensions"
)

// All lists every stage in canonical order. Run executes the stages in
// dependency order regardless of slice order; this order is also how
// Report.Metrics lists executed stages.
var All = []Stage{
	StageFilter, StageTTF, StagePeriodic, StageOutage, StagePac,
	StageLinkType, StagePrefix, StageFigures, StageExtensions,
}

// stageDeps is the dependency edge set of the DAG.
var stageDeps = map[Stage][]Stage{
	StageFilter:     nil,
	StageTTF:        {StageFilter},
	StagePeriodic:   {StageFilter},
	StageOutage:     {StageFilter},
	StagePac:        {StageOutage},
	StageLinkType:   {StageOutage},
	StagePrefix:     {StageFilter},
	StageFigures:    {StageTTF, StagePeriodic},
	StageExtensions: {StageFilter},
}

// Closure expands a stage selection to include every transitive
// dependency, returned in canonical order. A nil or empty selection
// means all stages. Unknown stage names are an error.
func Closure(stages []Stage) ([]Stage, error) {
	if len(stages) == 0 {
		out := make([]Stage, len(All))
		copy(out, All)
		return out, nil
	}
	want := make(map[Stage]bool)
	var add func(s Stage) error
	add = func(s Stage) error {
		deps, ok := stageDeps[s]
		if !ok {
			return fmt.Errorf("engine: unknown stage %q", s)
		}
		if want[s] {
			return nil
		}
		want[s] = true
		for _, d := range deps {
			if err := add(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range stages {
		if err := add(s); err != nil {
			return nil, err
		}
	}
	var out []Stage
	for _, s := range All {
		if want[s] {
			out = append(out, s)
		}
	}
	return out, nil
}

// ParseStages parses a comma-separated stage list, as accepted by
// churnctl's -stages flag. Empty input and "all" select every stage.
func ParseStages(s string) ([]Stage, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []Stage
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		st := Stage(part)
		if _, ok := stageDeps[st]; !ok {
			return nil, fmt.Errorf("engine: unknown stage %q (have %v)", part, All)
		}
		out = append(out, st)
	}
	return out, nil
}
