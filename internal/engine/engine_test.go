package engine

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"dynaddr/internal/core"
	"dynaddr/internal/sim"
)

func testDataset(t *testing.T, seed uint64) *sim.World {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 0.1
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// stripMetrics returns a copy of rep with the schedule-dependent
// Metrics cleared, for equality against the sequential pipeline.
func stripMetrics(rep *core.Report) *core.Report {
	c := *rep
	c.Metrics = nil
	return &c
}

func TestRunMatchesSequential(t *testing.T) {
	world := testDataset(t, 11)
	want := core.Run(world.Dataset, core.Options{})
	for _, workers := range []int{1, 4} {
		got, err := Run(context.Background(), world.Dataset, Config{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Metrics == nil || got.Metrics.Parallelism != workers {
			t.Fatalf("workers=%d: missing or wrong metrics: %+v", workers, got.Metrics)
		}
		if !reflect.DeepEqual(stripMetrics(got), want) {
			t.Fatalf("workers=%d: parallel report differs from sequential", workers)
		}
	}
}

func TestRunMetricsCoverStages(t *testing.T) {
	world := testDataset(t, 12)
	rep, err := Run(context.Background(), world.Dataset, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.Metrics.Stages), len(All); got != want {
		t.Fatalf("metrics cover %d stages, want %d", got, want)
	}
	for i, s := range All {
		m := rep.Metrics.Stages[i]
		if m.Stage != string(s) {
			t.Fatalf("stage %d = %q, want %q (canonical order)", i, m.Stage, s)
		}
		if m.Records == 0 {
			t.Errorf("stage %q processed no records", m.Stage)
		}
	}
	if rep.Metrics.Stage("filter") == nil || rep.Metrics.Stage("nope") != nil {
		t.Fatal("Stage lookup broken")
	}
}

func TestRunStageSubset(t *testing.T) {
	world := testDataset(t, 13)
	rep, err := Run(context.Background(), world.Dataset, Config{
		Parallelism: 2,
		Stages:      []Stage{StagePrefix},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefix pulls in filter transitively; nothing else runs.
	if rep.Filter == nil || rep.Table7All.Changes == 0 {
		t.Fatal("selected stages did not run")
	}
	if rep.Outage != nil || rep.Figure1 != nil || rep.Table5 != nil {
		t.Fatal("unselected stages ran")
	}
	want := []string{"filter", "prefix"}
	if len(rep.Metrics.Stages) != len(want) {
		t.Fatalf("metrics list %d stages, want %d", len(rep.Metrics.Stages), len(want))
	}
	for i, name := range want {
		if rep.Metrics.Stages[i].Stage != name {
			t.Fatalf("metrics[%d] = %q, want %q", i, rep.Metrics.Stages[i].Stage, name)
		}
	}
}

func TestRunUnknownStage(t *testing.T) {
	world := testDataset(t, 13)
	if _, err := Run(context.Background(), world.Dataset, Config{Stages: []Stage{"bogus"}}); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestRunCancelled(t *testing.T) {
	world := testDataset(t, 14)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, world.Dataset, Config{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled run returned a report")
	}
}

func TestClosure(t *testing.T) {
	got, err := Closure([]Stage{StageFigures})
	if err != nil {
		t.Fatal(err)
	}
	want := []Stage{StageFilter, StageTTF, StagePeriodic, StageFigures}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Closure(figures) = %v, want %v", got, want)
	}
	all, err := Closure(nil)
	if err != nil || !reflect.DeepEqual(all, All) {
		t.Fatalf("Closure(nil) = %v, %v", all, err)
	}
	if _, err := Closure([]Stage{"bogus"}); err == nil {
		t.Fatal("unknown stage accepted")
	}
}

func TestParseStages(t *testing.T) {
	got, err := ParseStages(" ttf, outage ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []Stage{StageTTF, StageOutage}) {
		t.Fatalf("ParseStages = %v", got)
	}
	for _, empty := range []string{"", "all"} {
		if got, err := ParseStages(empty); err != nil || got != nil {
			t.Fatalf("ParseStages(%q) = %v, %v", empty, got, err)
		}
	}
	if _, err := ParseStages("filter,bogus"); err == nil {
		t.Fatal("unknown stage accepted")
	}
}
