package engine

import (
	"dynaddr/internal/core"
	"dynaddr/internal/obs"
)

// ExportMetrics publishes one run's core.RunMetrics into reg, so the
// numbers behind `churnctl metrics` and the /metrics exposition are
// the same measurements. Stage wall time goes into a per-stage
// histogram whose _sum is the cumulative seconds spent in the stage
// and whose _count is the number of runs; a gauge carries the latest
// run's parallelism. Nil reg or nil metrics are no-ops — the
// sequential engine leaves Report.Metrics unset.
func ExportMetrics(reg *obs.Registry, m *core.RunMetrics) {
	if reg == nil || m == nil {
		return
	}
	reg.Counter("engine_runs_total", "Analysis engine runs completed.").Inc()
	reg.Gauge("engine_parallelism", "Worker-pool size of the most recent engine run.").
		Set(float64(m.Parallelism))
	for _, st := range m.Stages {
		l := obs.L("stage", st.Stage)
		reg.Histogram("engine_stage_wall_seconds",
			"Wall time per engine stage and run, in seconds (the sum is cumulative stage time).",
			nil, l).
			Observe(st.Wall.Seconds())
		reg.Counter("engine_stage_records_total",
			"Records processed per engine stage.", l).
			Add(int64(st.Records))
	}
}
