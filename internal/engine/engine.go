// Package engine runs the analysis pipeline as a staged DAG on a
// bounded worker pool. Each stage is an explicit node whose
// dependencies mirror the data flow of core.Run; independent stages run
// concurrently, and per-probe stages fan their probes out across the
// pool. Every artefact is produced by the same builder functions the
// sequential core.Run composes, and per-probe results are written into
// indexed slots then assembled in ascending probe-ID order, so the
// resulting Report is byte-identical to the sequential pipeline's
// whatever the schedule — only Report.Metrics (wall times, worker
// count) differs.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/stats"
)

// Config tunes a staged run.
type Config struct {
	// Parallelism bounds the worker pool shared by all stages; at most
	// this many per-probe tasks execute at once, engine-wide. Zero or
	// negative means GOMAXPROCS.
	Parallelism int
	// Stages selects which stages to run; dependencies are added
	// automatically (Closure). Nil means all. Report fields owned by
	// unselected stages stay zero.
	Stages []Stage
	// Options are the analysis options shared with core.Run.
	Options core.Options
}

// runState carries the DAG's intermediate artefacts between stages.
// Each field is written by exactly one stage and read only by stages
// that declare it as a dependency; the scheduler's done-channel
// synchronisation orders the accesses.
type runState struct {
	ds      *atlasdata.Dataset
	opts    core.Options
	rep     *core.Report
	sem     chan struct{} // engine-wide worker pool
	workers int

	res      *core.FilterResult
	byAS     map[uint32][]atlasdata.ProbeID
	ttfs     map[atlasdata.ProbeID]*stats.Weighted
	periodic map[atlasdata.ProbeID]core.PeriodicProbe
}

// stageFunc runs one stage and reports how many records it processed.
type stageFunc func(ctx context.Context, st *runState) (records int, err error)

var stageFuncs = map[Stage]stageFunc{
	StageFilter:     stageFilter,
	StageTTF:        stageTTF,
	StagePeriodic:   stagePeriodic,
	StageOutage:     stageOutage,
	StagePac:        stagePac,
	StageLinkType:   stageLinkType,
	StagePrefix:     stagePrefix,
	StageFigures:    stageFigures,
	StageExtensions: stageExtensions,
}

// Run executes the selected stages over a dataset. It returns the first
// stage error, or ctx.Err() when the context is cancelled; cancellation
// is observed at stage boundaries and between per-probe tasks, and
// in-flight stages stop before the next task. On success the Report
// carries Metrics describing the run.
func Run(ctx context.Context, ds *atlasdata.Dataset, cfg Config) (*core.Report, error) {
	stages, err := Closure(cfg.Stages)
	if err != nil {
		return nil, err
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := &runState{
		ds:      ds,
		opts:    cfg.Options.WithDefaults(),
		rep:     &core.Report{},
		sem:     make(chan struct{}, workers),
		workers: workers,
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	done := make(map[Stage]chan struct{}, len(stages))
	for _, s := range stages {
		done[s] = make(chan struct{})
	}
	var (
		mu       sync.Mutex
		firstErr error
		metrics  = make(map[Stage]core.StageMetric, len(stages))
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, s := range stages {
		wg.Add(1)
		go func(s Stage) {
			defer wg.Done()
			defer close(done[s])
			for _, dep := range stageDeps[s] {
				select {
				case <-done[dep]:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
			}
			// A dependency may close its channel after failing; check the
			// run is still live before starting.
			if ctx.Err() != nil {
				fail(ctx.Err())
				return
			}
			start := time.Now()
			records, err := stageFuncs[s](ctx, st)
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			metrics[s] = core.StageMetric{
				Stage:   string(s),
				Wall:    time.Since(start),
				Records: records,
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	rm := &core.RunMetrics{Parallelism: workers}
	for _, s := range stages {
		rm.Stages = append(rm.Stages, metrics[s])
	}
	st.rep.Metrics = rm
	return st.rep, nil
}

// forEach fans n index-addressed tasks out over the engine-wide worker
// pool. Each task acquires a pool slot, so concurrent stages together
// never exceed cfg.Parallelism running tasks. The first task error (or
// the context error) stops the remaining tasks and is returned.
func (st *runState) forEach(ctx context.Context, n int, fn func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	k := st.workers
	if k > n {
		k = n
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				select {
				case st.sem <- struct{}{}:
				case <-ctx.Done():
					fail(ctx.Err())
					return
				}
				err := fn(i)
				<-st.sem
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// stageFilter classifies every probe (fan-out) and assembles the
// FilterResult, Table 2, and the per-AS grouping shared downstream.
func stageFilter(ctx context.Context, st *runState) (int, error) {
	ids := st.ds.ProbeIDs()
	cats := make([]core.Category, len(ids))
	views := make([]*core.ProbeView, len(ids))
	err := st.forEach(ctx, len(ids), func(i int) error {
		cats[i], views[i] = core.ClassifyProbe(st.ds, st.ds.Probes[ids[i]])
		return nil
	})
	if err != nil {
		return 0, err
	}
	st.res = core.AssembleFilter(ids, cats, views)
	st.rep.Filter = st.res
	st.rep.Table2 = core.BuildTable2(st.res)
	st.byAS = core.ByAS(st.res)
	return len(ids), nil
}

// stageTTF computes each analyzable probe's TTF distribution (fan-out).
func stageTTF(ctx context.Context, st *runState) (int, error) {
	ids := st.res.GeoProbes
	out := make([]*stats.Weighted, len(ids))
	err := st.forEach(ctx, len(ids), func(i int) error {
		out[i] = core.TTF(core.V4Durations(st.res.Views[ids[i]].Entries))
		return nil
	})
	if err != nil {
		return 0, err
	}
	st.ttfs = make(map[atlasdata.ProbeID]*stats.Weighted, len(ids))
	for i, id := range ids {
		st.ttfs[id] = out[i]
	}
	return len(ids), nil
}

// stagePeriodic classifies each probe's periodicity (fan-out) and
// aggregates Table 5 and its All rows.
func stagePeriodic(ctx context.Context, st *runState) (int, error) {
	ids := st.res.GeoProbes
	type slot struct {
		pp core.PeriodicProbe
		ok bool
	}
	out := make([]slot, len(ids))
	err := st.forEach(ctx, len(ids), func(i int) error {
		out[i].pp, out[i].ok = core.ClassifyPeriodic(core.V4Durations(st.res.Views[ids[i]].Entries))
		return nil
	})
	if err != nil {
		return 0, err
	}
	st.periodic = make(map[atlasdata.ProbeID]core.PeriodicProbe)
	for i, id := range ids {
		if out[i].ok {
			st.periodic[id] = out[i].pp
		}
	}
	st.rep.Table5 = core.PeriodicRows(st.res, st.periodic)
	st.rep.Table5All = []core.ASPeriodicRow{
		core.PeriodicAllFrom(st.res, st.periodic, 24),
		core.PeriodicAllFrom(st.res, st.periodic, 168),
	}
	return len(ids), nil
}

// stageOutage runs the two outage passes: reboot detection per probe
// (fan-out), the global firmware profile, then per-probe gap
// classification (fan-out).
func stageOutage(ctx context.Context, st *runState) (int, error) {
	ids := st.res.GeoProbes
	rb := make([][]core.Reboot, len(ids))
	err := st.forEach(ctx, len(ids), func(i int) error {
		rb[i] = core.DetectReboots(st.ds.Uptime[ids[i]])
		return nil
	})
	if err != nil {
		return 0, err
	}
	reboots := make(map[atlasdata.ProbeID][]core.Reboot, len(ids))
	for i, id := range ids {
		reboots[id] = rb[i]
	}
	oa := core.OutageScaffold(st.res, reboots)

	gaps := make([][]core.Gap, len(ids))
	sts := make([]core.ProbeOutageStats, len(ids))
	err = st.forEach(ctx, len(ids), func(i int) error {
		id := ids[i]
		gaps[i], sts[i] = core.ProbeOutage(st.ds, st.res.Views[id], reboots[id], oa.FirmwareDays)
		return nil
	})
	if err != nil {
		return 0, err
	}
	for i, id := range ids {
		oa.Gaps[id] = gaps[i]
		oa.Stats[id] = sts[i]
	}
	st.rep.Outage = oa
	st.rep.Figure6RebootsPerDay = oa.RebootsPerDay
	st.rep.Figure6FirmwareDays = oa.FirmwareDays
	return len(ids), nil
}

// stagePac builds the conditional-probability artefacts: Figures 7/8,
// Table 6, Figure 9.
func stagePac(ctx context.Context, st *runState) (int, error) {
	st.rep.Figure7, st.rep.Figure8 = core.BuildPacFigures(st.rep.Outage, st.res, st.byAS, st.opts.TopASes)
	st.rep.Table6 = core.OutagesByAS(st.rep.Outage, st.res)
	st.rep.Figure9 = core.BuildFigure9(st.rep.Outage, st.res, st.byAS, st.rep.Table6, st.opts.Figure9ASNs)
	return len(st.res.ASProbes), nil
}

// stageLinkType infers per-AS access technology from outage response.
func stageLinkType(ctx context.Context, st *runState) (int, error) {
	st.rep.LinkTypes = core.LinkTypesByAS(st.rep.Outage, st.res)
	return len(st.res.ASProbes), nil
}

// stagePrefix computes each probe's Table 7 counters (fan-out) and
// aggregates the summary and per-AS rows.
func stagePrefix(ctx context.Context, st *runState) (int, error) {
	ids := st.res.ASProbes
	rows := make([]core.PrefixChangeRow, len(ids))
	err := st.forEach(ctx, len(ids), func(i int) error {
		rows[i] = core.ProbePrefixChanges(st.ds, st.res.Views[ids[i]])
		return nil
	})
	if err != nil {
		return 0, err
	}
	perProbe := make(map[atlasdata.ProbeID]core.PrefixChangeRow, len(ids))
	for i, id := range ids {
		perProbe[id] = rows[i]
	}
	st.rep.Table7All = core.PrefixAllFrom(st.res, perProbe)
	st.rep.Table7ByAS = core.PrefixRowsFrom(st.res, perProbe)
	return len(ids), nil
}

// stageFigures builds the TTF figures (1-3) and the Figure 4/5 hour
// histograms from the classification stages' outputs.
func stageFigures(ctx context.Context, st *runState) (int, error) {
	st.rep.Figure1 = core.BuildFigure1(st.res, st.ttfs)
	st.rep.Figure2 = core.BuildFigure2(st.res, st.ttfs, st.byAS, st.opts.TopASes)
	st.rep.Figure3 = core.BuildFigure3(st.res, st.ttfs, st.byAS, st.opts.Figure3Country, st.opts.Figure3MinYears)
	st.rep.HourHists = core.BuildHourHists(st.res, st.byAS, st.rep.Table5)
	return len(st.res.GeoProbes), nil
}

// stageExtensions runs the beyond-the-paper analyses.
func stageExtensions(ctx context.Context, st *runState) (int, error) {
	st.rep.AdminEvents = core.DetectAdminRenumbering(st.res)
	st.rep.ChurnMean = core.MeanTurnover(core.DailyChurn(st.ds, st.res.GeoProbes))
	st.rep.V6 = core.AnalyzeV6(st.ds)
	return len(st.res.GeoProbes), nil
}
