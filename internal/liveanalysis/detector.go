package liveanalysis

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// Detector is one probe's incremental analysis core. The stream
// ingester feeds it events its state machines already derive per record
// — closed durations, gaps, changes, qualified loss runs, rounds,
// reboots — and the detector accumulates exactly the per-probe lists
// the batch primitives would compute from the records seen so far.
//
// The only non-trivial incremental piece is reboot-gap resolution: the
// batch ResolveRebootGaps looks up, for each reboot, the last k-root
// round at or before the boot instant and the first one after. The
// first needs history, the second the future. The detector keeps a
// short deque of round timestamps for the lookup-behind, resolves the
// lookup-ahead as soon as a later round arrives (gaps stay Open until
// then), and prunes the deque against an uptime watermark: a future
// reboot's boot instant cannot precede the latest uptime report by more
// than the clock slack (the report would have shown the new counter),
// so rounds older than that — except the newest such round, the only
// possible lookup-behind answer — can never be needed again. This keeps
// memory bounded by the probe's reporting cadence while staying exact
// for any stream with truthful uptime counters.
//
// All exported fields are serialized into shard checkpoints; after
// restoring them, call Restore to rebuild the derived queue.
type Detector struct {
	RawHours []float64
	Gaps     []GapEvent
	Networks []core.NetworkOutage
	Reboots  []core.Reboot
	// RebootGaps is index-aligned with Reboots.
	RebootGaps []core.RebootGap
	Prefix     core.PrefixChangeRow

	// Rounds is the retained k-root round-timestamp deque (see above).
	Rounds []simclock.Time
	// LastUptime is the watermark basis: the newest uptime report seen.
	LastUptime simclock.Time

	// pending indexes the RebootGaps still Open, ascending. Derived
	// state: Restore rebuilds it from the Open flags.
	pending []int
}

// GapEvent is one inter-connection gap as the detector retains it: the
// compact subset of core.Gap that exists at ingest time. The probe ID is
// implicit (the detector is per-probe) and the cause fields are assigned
// only at query time, so storing them per event — on the hottest
// retained list there is — would triple the bytes for constants.
type GapEvent struct {
	PrevEnd   simclock.Time `json:"prev_end"`
	NextStart simclock.Time `json:"next_start"`
	Changed   bool          `json:"changed,omitempty"`
}

// NewDetector returns an empty detector.
func NewDetector() *Detector {
	return &Detector{}
}

// Restore rebuilds the derived open-gap queue after the exported fields
// were loaded from a checkpoint.
func (d *Detector) Restore() {
	d.pending = d.pending[:0]
	for i := range d.RebootGaps {
		if d.RebootGaps[i].Open {
			d.pending = append(d.pending, i)
		}
	}
}

// OnClosedDuration records a change-bounded address duration the moment
// its closing change arrives. Non-positive lengths are recorded too:
// the batch duration list keeps them (they count toward the periodic
// classifier's minimum-durations gate) even though they carry no TTF
// mass.
func (d *Detector) OnClosedDuration(hours float64) {
	d.RawHours = append(d.RawHours, hours)
}

// OnGap records one inter-connection gap of the stripped log
// (core.GapSpans), cause unclassified.
func (d *Detector) OnGap(prevEnd, nextStart simclock.Time, changed bool) {
	d.Gaps = append(d.Gaps, GapEvent{PrevEnd: prevEnd, NextStart: nextStart, Changed: changed})
}

// CoreGaps expands the compact gap events into core.Gap values for the
// query-time fold, stamping the probe ID back in.
func (d *Detector) CoreGaps(probe atlasdata.ProbeID) []core.Gap {
	if len(d.Gaps) == 0 {
		return nil
	}
	out := make([]core.Gap, len(d.Gaps))
	for i, g := range d.Gaps {
		out[i] = core.Gap{Probe: probe, PrevEnd: g.PrevEnd, NextStart: g.NextStart, Changed: g.Changed}
	}
	return out
}

// applyChange folds one address change into a Table 7 counter row,
// mirroring the batch per-change accounting: unrouted endpoints
// short-circuit the boundary tests.
func applyChange(row *core.PrefixChangeRow, from, to ip4.Addr, fromPfx, toPfx ip4.Prefix, okFrom, okTo bool) {
	row.Changes++
	if !okFrom || !okTo {
		row.Unrouted++
		return
	}
	if fromPfx != toPfx {
		row.DiffBGP++
	}
	if from.Slash16() != to.Slash16() {
		row.DiffS16++
	}
	if from.Slash8() != to.Slash8() {
		row.DiffS8++
	}
}

// OnChange records one observed address change with its endpoints'
// month-matched BGP prefixes, feeding the probe's Table 7 row. The
// day-bucketed churn counters are not per-probe state — the shard-level
// ChurnTable accumulates those.
func (d *Detector) OnChange(ch core.AddressChange, fromPfx, toPfx ip4.Prefix, okFrom, okTo bool) {
	applyChange(&d.Prefix, ch.From, ch.To, fromPfx, toPfx, okFrom, okTo)
}

// OnChangeDual is the fused ingest-path form of OnChange followed by
// ChurnTable.Add: the boundary predicates are evaluated once and both
// the probe's Table 7 row and the supplied churn bucket are advanced.
// Equivalent to the two separate calls by construction (the test suite
// pins it); exists because changes are hot enough on the apply path
// that the duplicated comparisons show up in profiles.
func (d *Detector) OnChangeDual(bucket *core.PrefixChangeRow, from, to ip4.Addr, fromPfx, toPfx ip4.Prefix, okFrom, okTo bool) {
	d.Prefix.Changes++
	bucket.Changes++
	if !okFrom || !okTo {
		d.Prefix.Unrouted++
		bucket.Unrouted++
		return
	}
	if fromPfx != toPfx {
		d.Prefix.DiffBGP++
		bucket.DiffBGP++
	}
	if from.Slash16() != to.Slash16() {
		d.Prefix.DiffS16++
		bucket.DiffS16++
	}
	if from.Slash8() != to.Slash8() {
		d.Prefix.DiffS8++
		bucket.DiffS8++
	}
}

// OnNetworkOutage records a closed, qualified loss run.
func (d *Detector) OnNetworkOutage(n core.NetworkOutage) {
	d.Networks = append(d.Networks, n)
}

// OnRound observes one k-root round timestamp (lost or not — gap
// resolution cares about round presence, not outcome). It closes every
// pending reboot gap the round bounds; reboots are detected in
// boot-instant order, so the queue resolves front first.
func (d *Detector) OnRound(ts simclock.Time) {
	// Kept loop-free so it inlines into the per-record apply path;
	// rounds are the dominant record kind and almost never have a gap
	// waiting on them.
	d.Rounds = append(d.Rounds, ts)
	if len(d.pending) > 0 {
		d.resolvePending(ts)
	}
}

func (d *Detector) resolvePending(ts simclock.Time) {
	for len(d.pending) > 0 {
		i := d.pending[0]
		if !ts.After(d.Reboots[i].At) {
			break
		}
		d.RebootGaps[i].End = ts
		d.RebootGaps[i].Open = false
		d.pending = d.pending[1:]
	}
}

// OnReboot records a detected reboot and resolves its surrounding
// k-root silence against the retained rounds, exactly as the batch
// ResolveRebootGaps would: last round at or before the boot instant
// behind (or boot minus the ping-gap threshold when none), first round
// after ahead (or Open until one arrives).
func (d *Detector) OnReboot(r core.Reboot) {
	i := sort.Search(len(d.Rounds), func(k int) bool {
		return d.Rounds[k].After(r.At)
	})
	g := core.RebootGap{}
	if i > 0 {
		g.Start = d.Rounds[i-1]
	} else {
		g.Start = r.At.Add(-core.PingGapThreshold)
	}
	if i < len(d.Rounds) {
		g.End = d.Rounds[i]
	} else {
		g.Open = true
		d.pending = append(d.pending, len(d.Reboots))
	}
	d.Reboots = append(d.Reboots, r)
	d.RebootGaps = append(d.RebootGaps, g)
}

// OnUptime advances the watermark to a new uptime report and prunes the
// round deque: every round older than the watermark except the newest
// one (the only candidate left for a future reboot's lookup-behind) is
// dropped. The doubled slack leaves margin on both the old and the new
// boot-instant estimate.
func (d *Detector) OnUptime(ts simclock.Time) {
	d.LastUptime = ts
	if len(d.Rounds) < 2 {
		return
	}
	w := ts.Add(-2 * core.BootSlack)
	// Linear front scan rather than a binary search: the pruned deque
	// holds at most a reporting interval's worth of rounds, so the scan
	// is a few inlined comparisons instead of closure calls.
	i := 0
	for i < len(d.Rounds) && !d.Rounds[i].After(w) {
		i++
	}
	if i > 1 {
		n := copy(d.Rounds, d.Rounds[i-1:])
		d.Rounds = d.Rounds[:n]
	}
}
