package liveanalysis

import (
	"sort"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
)

// Options parameterises the query-time fold.
type Options struct {
	// TopASes bounds Figures 7/8 to the N ASes with the most qualifying
	// probes. Zero means 5, the paper's figure width.
	TopASes int
}

func (o Options) withDefaults() Options {
	if o.TopASes <= 0 {
		o.TopASes = 5
	}
	return o
}

// Result is the live analysis answer: the paper's AS-level tables and
// outage figures plus the windowed churn series, computed from event
// state at a snapshot barrier. Every field is a plain value or slice in
// deterministic order, so two Results are equal exactly when their JSON
// encodings are byte-equal — the form the replay-equivalence tests
// compare.
type Result struct {
	// Probes counts the analyzable probes contributing events;
	// ASProbes the single-AS subset (the paper's two analysis sets).
	Probes   int `json:"probes"`
	ASProbes int `json:"as_probes"`

	// Table5 holds the per-AS periodic-renumbering rows, Table5All the
	// all-probes summary rows at 24h and 168h.
	Table5    []core.ASPeriodicRow `json:"table5"`
	Table5All []core.ASPeriodicRow `json:"table5_all"`

	// RebootsPerDay and FirmwareDays are Figure 6: unique rebooting
	// probes per study day and the detected firmware-push days.
	RebootsPerDay []int `json:"reboots_per_day"`
	FirmwareDays  []int `json:"firmware_days"`

	// Figure7 and Figure8 are the per-AS P(ac|nw) and P(ac|pw) ECDFs.
	Figure7 []core.PacECDF `json:"figure7"`
	Figure8 []core.PacECDF `json:"figure8"`

	// Table6 holds the outage-renumbering rows.
	Table6 []core.ASOutageRow `json:"table6"`

	// Table7All and Table7ByAS are the prefix-change summary and per-AS
	// rows.
	Table7All  core.PrefixChangeRow   `json:"table7_all"`
	Table7ByAS []core.PrefixChangeRow `json:"table7_by_as"`

	// Churn is the day-windowed change-traffic series over all probes,
	// ascending by day (day -1, when present, leads).
	Churn []ChurnWindow `json:"churn"`
}

// Compute runs the query-time fold: firmware-push detection over the
// population, then per-probe power-outage qualification and gap
// classification, then the AS aggregations — the batch pipeline's §4-§6
// stages over event state instead of raw records. events must be sorted
// by probe ID ascending (the order both the shard merge and FromBatch
// produce), so group membership lists match the batch ordering exactly.
func Compute(events []ProbeEvents, churn map[int]core.PrefixChangeRow, opts Options) *Result {
	opts = opts.withDefaults()
	r := &Result{Probes: len(events)}

	// AS groups over the single-AS probes, mirroring core.ByAS.
	groups := make(map[uint32][]atlasdata.ProbeID)
	var asProbes []atlasdata.ProbeID
	for _, ev := range events {
		if ev.MultiAS {
			continue
		}
		asProbes = append(asProbes, ev.Probe)
		if ev.ASN != 0 {
			groups[ev.ASN] = append(groups[ev.ASN], ev.Probe)
		}
	}
	r.ASProbes = len(asProbes)

	// Pass 1 (global): the firmware profile needs every probe's reboots
	// before any per-probe power qualification can run.
	rebootsByProbe := make(map[atlasdata.ProbeID][]core.Reboot, len(events))
	for _, ev := range events {
		rebootsByProbe[ev.Probe] = ev.Reboots
	}
	r.RebootsPerDay = core.RebootsPerDay(rebootsByProbe)
	r.FirmwareDays = core.DetectFirmwareDays(r.RebootsPerDay)

	// Pass 2 (per probe): firmware filtering, power-outage
	// qualification from the pre-resolved reboot gaps, gap
	// classification, outage tallies, periodic classification.
	stats := make(map[atlasdata.ProbeID]core.ProbeOutageStats, len(events))
	perProbe := make(map[atlasdata.ProbeID]core.PeriodicProbe)
	prefixRows := make(map[atlasdata.ProbeID]core.PrefixChangeRow, len(events))
	changed := make(map[atlasdata.ProbeID]bool, len(events))
	for _, ev := range events {
		kept := core.FilterFirmwareReboots(ev.Reboots, r.FirmwareDays)
		powers := core.PowerOutagesFrom(ev.Reboots, ev.RebootGaps, kept)
		gaps := core.ClassifyGaps(ev.Gaps, ev.Networks, powers)
		stats[ev.Probe] = core.TallyOutageStats(ev.Probe, gaps, ev.V3)
		if pp, ok := core.ClassifyPeriodicHours(ev.Probe, ev.RawHours); ok {
			perProbe[ev.Probe] = pp
		}
		prefixRows[ev.Probe] = ev.Prefix
		changed[ev.Probe] = ev.HasChanges
	}

	// AS aggregation, through the same seams the batch Report uses.
	r.Table5 = core.PeriodicRowsOver(groups, perProbe)
	r.Table5All = []core.ASPeriodicRow{
		core.PeriodicAllOver(asProbes, perProbe, 24),
		core.PeriodicAllOver(asProbes, perProbe, 168),
	}
	hasChanges := func(id atlasdata.ProbeID) bool { return changed[id] }
	r.Figure7, r.Figure8 = core.BuildPacFiguresFrom(stats, hasChanges, groups, opts.TopASes)
	r.Table6 = core.OutagesRows(stats, groups)
	r.Table7All = core.PrefixAllOver(asProbes, prefixRows)
	r.Table7ByAS = core.PrefixRowsOver(groups, prefixRows)

	for day, row := range churn {
		r.Churn = append(r.Churn, ChurnWindow{Day: day, Row: row})
	}
	sort.Slice(r.Churn, func(i, j int) bool { return r.Churn[i].Day < r.Churn[j].Day })
	return r
}
