package liveanalysis

import (
	"math/rand"
	"reflect"
	"testing"

	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// uptimeFeeder mirrors the stream ingester's incremental reboot
// detection (the DetectReboots recurrence): feed it uptime records in
// time order and it drives the detector's OnReboot/OnUptime hooks.
type uptimeFeeder struct {
	det      *Detector
	probe    atlasdata.ProbeID
	prevBoot simclock.Time
	seen     bool
}

func (f *uptimeFeeder) onUptime(u atlasdata.UptimeRecord) {
	boot := u.Timestamp.Add(-simclock.Duration(u.Uptime))
	if f.seen && boot.Sub(f.prevBoot) > core.BootSlack {
		f.det.OnReboot(core.Reboot{Probe: f.probe, At: boot})
	}
	if !f.seen || boot.After(f.prevBoot) {
		f.prevBoot = boot
	}
	f.seen = true
	f.det.OnUptime(u.Timestamp)
}

// genTimeline builds a model-conforming probe history: a boot schedule,
// k-root rounds at a jittery cadence with occasional skips (so reboot
// gaps vary), and truthful uptime reports. Returned slices are
// time-sorted with strictly increasing timestamps across both kinds.
func genTimeline(rng *rand.Rand, probe atlasdata.ProbeID) ([]atlasdata.KRootRound, []atlasdata.UptimeRecord) {
	var rounds []atlasdata.KRootRound
	var uptime []atlasdata.UptimeRecord

	boot := simclock.StudyStart.Add(-simclock.Duration(rng.Intn(7200)) * simclock.Second)
	end := simclock.StudyStart.Add(10 * simclock.Day)
	nextRound := simclock.StudyStart.Add(simclock.Duration(rng.Intn(240)) * simclock.Second)
	nextUp := simclock.StudyStart.Add(simclock.Duration(600+rng.Intn(1800)) * simclock.Second)
	nextBoot := simclock.StudyStart.Add(simclock.Duration(3600+rng.Intn(86400)) * simclock.Second)

	for nextRound.Before(end) || nextUp.Before(end) {
		// Reboots happen between reports; the next uptime record's
		// counter reflects the new boot instant.
		if nextBoot.Before(nextRound) && nextBoot.Before(nextUp) {
			boot = nextBoot
			nextBoot = nextBoot.Add(simclock.Duration(3600+rng.Intn(2*86400)) * simclock.Second)
			// A reboot often silences a few k-root rounds.
			if rng.Intn(3) > 0 {
				nextRound = boot.Add(simclock.Duration(300+rng.Intn(3600)) * simclock.Second)
			}
			continue
		}
		if nextRound.Before(nextUp) {
			rounds = append(rounds, atlasdata.KRootRound{
				Probe: probe, Timestamp: nextRound, Sent: 3, Success: 3, LTS: 30,
			})
			nextRound = nextRound.Add(simclock.Duration(230+rng.Intn(30)) * simclock.Second)
			if rng.Intn(20) == 0 { // drop a stretch of rounds
				nextRound = nextRound.Add(simclock.Duration(rng.Intn(7200)) * simclock.Second)
			}
			continue
		}
		uptime = append(uptime, atlasdata.UptimeRecord{
			Probe: probe, Timestamp: nextUp, Uptime: int64(nextUp.Sub(boot)),
		})
		nextUp = nextUp.Add(simclock.Duration(900+rng.Intn(2700)) * simclock.Second)
	}
	return rounds, uptime
}

// TestDetectorMatchesBatchResolution replays merged round/uptime
// timelines through the detector and checks, at every barrier, that its
// reboots and resolved gaps equal the batch primitives run over the
// records seen so far — including while the watermark pruning is
// actively shrinking the round deque, and through the final
// power-outage qualification.
func TestDetectorMatchesBatchResolution(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		probe := atlasdata.ProbeID(1000 + seed)
		rounds, uptime := genTimeline(rng, probe)
		if len(uptime) < 10 {
			t.Fatalf("seed %d: degenerate timeline", seed)
		}

		det := NewDetector()
		feeder := &uptimeFeeder{det: det, probe: probe}
		ri, ui := 0, 0
		step := 0
		maxDeque := 0
		for ri < len(rounds) || ui < len(uptime) {
			if ui >= len(uptime) || (ri < len(rounds) && rounds[ri].Timestamp.Before(uptime[ui].Timestamp)) {
				det.OnRound(rounds[ri].Timestamp)
				ri++
			} else {
				feeder.onUptime(uptime[ui])
				ui++
			}
			if len(det.Rounds) > maxDeque {
				maxDeque = len(det.Rounds)
			}
			step++
			if step%97 != 0 && ri < len(rounds) && ui < len(uptime) {
				continue
			}
			wantReboots := core.DetectReboots(uptime[:ui])
			if !reflect.DeepEqual(det.Reboots, wantReboots) {
				t.Fatalf("seed %d step %d: reboots diverge: got %v want %v", seed, step, det.Reboots, wantReboots)
			}
			wantGaps := core.ResolveRebootGaps(wantReboots, rounds[:ri])
			got := det.RebootGaps
			if len(got) == 0 {
				got = nil
			}
			if len(wantGaps) == 0 {
				wantGaps = nil
			}
			if !reflect.DeepEqual(got, wantGaps) {
				t.Fatalf("seed %d step %d: gaps diverge:\ngot  %v\nwant %v", seed, step, got, wantGaps)
			}
			wantPow := core.DetectPowerOutages(wantReboots, rounds[:ri])
			gotPow := core.PowerOutagesFrom(det.Reboots, det.RebootGaps, det.Reboots)
			if !reflect.DeepEqual(gotPow, wantPow) {
				t.Fatalf("seed %d step %d: power outages diverge", seed, step)
			}
		}
		// The pruning must actually bound the deque: rounds come every
		// ~4 minutes, uptime reports every ~15-60, so the retained
		// window is a handful of rounds, never the full history.
		if maxDeque >= len(rounds)/2 {
			t.Fatalf("seed %d: round deque grew to %d of %d rounds; pruning ineffective", seed, maxDeque, len(rounds))
		}
	}
}

// TestDetectorRestore round-trips the exported state mid-stream into a
// fresh detector (as checkpoint recovery does), continues both on the
// same suffix, and demands identical final state — pinning that Restore
// rebuilds everything the hooks need.
func TestDetectorRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	probe := atlasdata.ProbeID(7)
	rounds, uptime := genTimeline(rng, probe)

	det := NewDetector()
	feeder := &uptimeFeeder{det: det, probe: probe}
	type ev struct {
		round bool
		r     atlasdata.KRootRound
		u     atlasdata.UptimeRecord
	}
	var evs []ev
	ri, ui := 0, 0
	for ri < len(rounds) || ui < len(uptime) {
		if ui >= len(uptime) || (ri < len(rounds) && rounds[ri].Timestamp.Before(uptime[ui].Timestamp)) {
			evs = append(evs, ev{round: true, r: rounds[ri]})
			ri++
		} else {
			evs = append(evs, ev{u: uptime[ui]})
			ui++
		}
	}
	cut := len(evs) * 2 / 5
	apply := func(d *Detector, f *uptimeFeeder, e ev) {
		if e.round {
			d.OnRound(e.r.Timestamp)
		} else {
			f.onUptime(e.u)
		}
	}
	for _, e := range evs[:cut] {
		apply(det, feeder, e)
	}

	// Copy only the exported fields — what a checkpoint carries.
	restored := &Detector{
		RawHours:   append([]float64(nil), det.RawHours...),
		Gaps:       append([]GapEvent(nil), det.Gaps...),
		Networks:   append([]core.NetworkOutage(nil), det.Networks...),
		Reboots:    append([]core.Reboot(nil), det.Reboots...),
		RebootGaps: append([]core.RebootGap(nil), det.RebootGaps...),
		Prefix:     det.Prefix,
		Rounds:     append([]simclock.Time(nil), det.Rounds...),
		LastUptime: det.LastUptime,
	}
	restored.Restore()
	// The feeder's recurrence state is rebuilt the same way the stream
	// restores it from its own checkpointed fields.
	feeder2 := &uptimeFeeder{det: restored, probe: probe, prevBoot: feeder.prevBoot, seen: feeder.seen}

	for _, e := range evs[cut:] {
		apply(det, feeder, e)
		apply(restored, feeder2, e)
	}
	if !reflect.DeepEqual(det.Reboots, restored.Reboots) ||
		!reflect.DeepEqual(det.RebootGaps, restored.RebootGaps) ||
		!reflect.DeepEqual(det.Rounds, restored.Rounds) {
		t.Fatalf("restored detector diverged from uninterrupted one")
	}
}

// TestChurnTablePartitionsPrefix feeds random address changes through
// both a detector (the per-probe Table 7 row) and a churn table (the
// shared day buckets) and checks that the buckets sum back to the
// probe's row — every change lands in exactly one window — and that the
// table round-trips through its sparse checkpoint form.
func TestChurnTablePartitionsPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	det := NewDetector()
	var tab ChurnTable
	// The fused ingest-path form must stay equivalent to the two
	// separate calls; run it in parallel on its own pair and compare.
	fused := NewDetector()
	var fusedTab ChurnTable
	ts := simclock.StudyStart.Add(-simclock.Day)
	for i := 0; i < 500; i++ {
		ts = ts.Add(simclock.Duration(rng.Intn(2*86400)) * simclock.Second)
		from := ip4.FromOctets(byte(rng.Intn(200)+1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254)+1))
		to := ip4.FromOctets(byte(rng.Intn(200)+1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(254)+1))
		ch := core.AddressChange{From: from, To: to, PrevEnd: ts, NextStart: ts.Add(simclock.Minute)}
		okFrom := rng.Intn(10) > 0
		okTo := rng.Intn(10) > 0
		det.OnChange(ch, from.Slash24(), to.Slash24(), okFrom, okTo)
		tab.Add(ch, from.Slash24(), to.Slash24(), okFrom, okTo)
		fused.OnChangeDual(fusedTab.Row(ch.NextStart), from, to, from.Slash24(), to.Slash24(), okFrom, okTo)
	}
	if fused.Prefix != det.Prefix {
		t.Fatalf("fused probe row %+v, separate calls give %+v", fused.Prefix, det.Prefix)
	}
	if !reflect.DeepEqual(fusedTab.Cells(), tab.Cells()) || fusedTab.Outside() != tab.Outside() {
		t.Fatalf("fused churn table diverges from separate calls")
	}
	cells := tab.Cells()
	var sum core.PrefixChangeRow
	sum.Accumulate(tab.Outside())
	for i, c := range cells {
		if i > 0 && cells[i-1].Day >= c.Day {
			t.Fatalf("churn days not strictly ascending: %d then %d", cells[i-1].Day, c.Day)
		}
		sum.Accumulate(c.Row)
	}
	want := det.Prefix
	want.ASN = sum.ASN
	if sum != want {
		t.Fatalf("churn windows sum to %+v, probe row is %+v", sum, det.Prefix)
	}
	if tab.Outside().Changes == 0 {
		t.Fatalf("expected pre-study changes in the outside window")
	}
	if det.Prefix.Changes != 500 {
		t.Fatalf("expected 500 changes, got %d", det.Prefix.Changes)
	}

	// Sparse round-trip: restore into a fresh table, fold both into
	// day-keyed maps, compare.
	var restored ChurnTable
	restored.Restore(cells, tab.Outside())
	got := make(map[int]core.PrefixChangeRow)
	restored.AccumulateInto(got)
	ref := make(map[int]core.PrefixChangeRow)
	tab.AccumulateInto(ref)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("restored table folds to %v, want %v", got, ref)
	}
}
