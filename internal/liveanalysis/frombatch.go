package liveanalysis

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
)

// FromBatch computes the live-analysis Result from a finished dataset
// through the batch primitives: filter, per-probe detection, then the
// same Compute fold the streaming path runs. It is the oracle the
// replay-equivalence tests compare streaming barriers against — and a
// convenient way to get a Result without standing up an ingester.
func FromBatch(ds *atlasdata.Dataset, opts Options) *Result {
	res := core.Filter(ds)
	events := make([]ProbeEvents, 0, len(res.GeoProbes))
	for _, id := range res.GeoProbes {
		view := res.Views[id]
		rounds := ds.KRoot[id]
		reboots := core.DetectReboots(ds.Uptime[id])
		ev := ProbeEvents{
			Probe:      id,
			ASN:        uint32(view.ASN),
			MultiAS:    view.MultiAS,
			V3:         view.Meta.Version == atlasdata.V3,
			HasChanges: len(view.Changes) > 0,
			Gaps:       core.GapSpans(view.Entries),
			Networks:   core.DetectNetworkOutages(rounds),
			Reboots:    reboots,
			RebootGaps: core.ResolveRebootGaps(reboots, rounds),
			Prefix:     core.ProbePrefixChanges(ds, view),
		}
		for _, d := range core.V4Durations(view.Entries) {
			ev.RawHours = append(ev.RawHours, d.Hours())
		}
		events = append(events, ev)
	}

	// Churn counts the change traffic of every probe with a connection
	// log, analyzable or not — the raw operational view. The counters
	// are plain integer sums into a dense day table, so probe order is
	// irrelevant.
	var tab ChurnTable
	for _, log := range ds.ConnLogs {
		entries, _ := core.StripTestingEntry(log)
		for _, ch := range core.V4Changes(entries) {
			_, fromPfx, okFrom := ds.Pfx2AS.Lookup(ch.From, ch.PrevEnd)
			_, toPfx, okTo := ds.Pfx2AS.Lookup(ch.To, ch.NextStart)
			tab.Add(ch, fromPfx, toPfx, okFrom, okTo)
		}
	}
	churn := make(map[int]core.PrefixChangeRow)
	tab.AccumulateInto(churn)
	return Compute(events, churn, opts)
}
