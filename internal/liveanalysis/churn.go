package liveanalysis

import (
	"dynaddr/internal/core"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// ChurnCell is one study day's accumulated address-change churn, the
// sparse serialized form of a ChurnTable.
type ChurnCell struct {
	Day int                  `json:"day"`
	Row core.PrefixChangeRow `json:"row"`
}

// ChurnTable accumulates the day-bucketed address-change churn series
// (the raw operational view behind Result.Churn). Unlike the per-probe
// Detector it is shared state — one table per shard — because churn has
// no per-probe dimension: the counters are integer sums over every
// change the shard sees, whatever probe it belongs to. The dense
// day-indexed array makes each add one bounds check and a few integer
// increments, with no hashing, searching, or growth on the ingest path;
// the whole table is ~17 KB, allocated once on the first in-study
// change.
type ChurnTable struct {
	days    []core.PrefixChangeRow // one row per study day, lazily allocated
	outside core.PrefixChangeRow   // changes outside the study year
}

// studyDays is the size of the dense day array.
var studyDays = int(simclock.StudyEnd.Sub(simclock.StudyStart) / simclock.Day)

// Row returns the bucket a change observed at nextStart lands in,
// allocating the dense array on first in-study use.
func (t *ChurnTable) Row(nextStart simclock.Time) *core.PrefixChangeRow {
	day := nextStart.DayWithinStudy()
	if day < 0 {
		return &t.outside
	}
	if t.days == nil {
		t.days = make([]core.PrefixChangeRow, studyDays)
	}
	return &t.days[day]
}

// Add folds one observed address change into its day bucket.
func (t *ChurnTable) Add(ch core.AddressChange, fromPfx, toPfx ip4.Prefix, okFrom, okTo bool) {
	applyChange(t.Row(ch.NextStart), ch.From, ch.To, fromPfx, toPfx, okFrom, okTo)
}

// Cells returns the non-empty day buckets in ascending day order — the
// sparse form checkpoints store. The outside row is not a cell; it is
// serialized alongside.
func (t *ChurnTable) Cells() []ChurnCell {
	var out []ChurnCell
	for day := range t.days {
		if t.days[day].Changes > 0 {
			out = append(out, ChurnCell{Day: day, Row: t.days[day]})
		}
	}
	return out
}

// Outside returns the bucket for changes outside the study year.
func (t *ChurnTable) Outside() core.PrefixChangeRow { return t.outside }

// Restore loads the sparse checkpoint form back into the dense table,
// replacing any current contents.
func (t *ChurnTable) Restore(cells []ChurnCell, outside core.PrefixChangeRow) {
	t.days = nil
	t.outside = outside
	if len(cells) > 0 {
		t.days = make([]core.PrefixChangeRow, studyDays)
		for _, c := range cells {
			if c.Day >= 0 && c.Day < studyDays {
				t.days[c.Day] = c.Row
			}
		}
	}
}

// AccumulateInto folds the table into a shared day-keyed map (day -1 =
// outside the study year), the shape the Compute fold consumes.
func (t *ChurnTable) AccumulateInto(into map[int]core.PrefixChangeRow) {
	for day := range t.days {
		if t.days[day].Changes > 0 {
			r := into[day]
			r.Accumulate(t.days[day])
			into[day] = r
		}
	}
	if t.outside.Changes > 0 {
		r := into[-1]
		r.Accumulate(t.outside)
		into[-1] = r
	}
}
