// Package liveanalysis holds the incremental detector cores and the
// query-time fold that answer the paper's questions live, at apply
// time: periodic-renumbering detection (Table 5), outage attribution
// (Table 6, Figures 6-8), prefix analysis (Table 7) and windowed
// address-change churn.
//
// The split mirrors the paper's pipeline shape. Everything that is a
// pure function of one probe's record stream — closed address
// durations, inter-connection gaps, qualified loss runs, reboots and
// their surrounding k-root silences, prefix-change counters — is
// maintained record by record in a per-probe Detector, owned by the
// stream ingester's shard goroutines. Everything that is retroactive or
// cross-probe — firmware-push detection (a population-wide reboot
// spike reshapes every probe's power-outage evidence), gap
// classification, AS aggregation, ECDFs — runs only at query time in
// Compute, over immutable ProbeEvents snapshots.
//
// FromBatch computes the same Result from a finished dataset through
// the batch primitives; the replay-equivalence tests in internal/stream
// pin the two byte-identical at every snapshot barrier.
package liveanalysis

import (
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
)

// ProbeEvents is one analyzable probe's accumulated event state, frozen
// at a snapshot barrier: the inputs Compute needs, with no open
// machinery attached. Slices are private copies — the fold may run
// while the ingester keeps applying records.
type ProbeEvents struct {
	Probe atlasdata.ProbeID
	// ASN is the probe's home AS when single-AS and routed, else 0.
	ASN uint32
	// MultiAS excludes the probe from AS-level aggregation (paper §3.3).
	MultiAS bool
	// V3 gates the power-outage counting (paper §5.1).
	V3 bool
	// HasChanges reports at least one observed IPv4 address change.
	HasChanges bool

	// RawHours are the closed (change-bounded) address durations in
	// hours, in close order, non-positive values included — exactly the
	// batch V4Durations list.
	RawHours []float64
	// Gaps are the inter-connection gaps of the stripped log, causes
	// still unclassified (classification is retroactive: firmware
	// filtering reshapes the power evidence).
	Gaps []core.Gap
	// Networks are the qualified network outages, including a loss run
	// still open at the barrier (finalized under the end-of-input rule).
	Networks []core.NetworkOutage
	// Reboots and RebootGaps are the detected reboots and their
	// surrounding k-root silences, index-aligned; a gap with no round
	// after the reboot yet is Open.
	Reboots    []core.Reboot
	RebootGaps []core.RebootGap
	// Prefix is the probe's Table 7 counter row.
	Prefix core.PrefixChangeRow
}

// ChurnWindow is one study day's address-change traffic across every
// probe (not just analyzable ones): how many changes landed in the day
// and how far they moved. Day is simclock's day-within-study; -1
// collects changes outside the study year.
type ChurnWindow struct {
	Day int                  `json:"day"`
	Row core.PrefixChangeRow `json:"row"`
}
