package liveanalysis

import (
	"dynaddr/internal/core"
	"dynaddr/internal/tables"
)

// The render methods reuse the batch Report's row formatters, so a live
// Result and a batch Report over the same records print byte-identical
// tables — the property churnctl's -live-analysis mode relies on.

// RenderTable5 formats the periodic-AS table.
func (r *Result) RenderTable5(names core.NameFunc) *tables.Table {
	return core.RenderTable5Rows(r.Table5All, r.Table5, names)
}

// RenderTable6 formats the outage-renumbering table.
func (r *Result) RenderTable6(names core.NameFunc) *tables.Table {
	return core.RenderTable6Rows(r.Table6, names)
}

// RenderTable7 formats the prefix-change table.
func (r *Result) RenderTable7(names core.NameFunc) *tables.Table {
	return core.RenderTable7Rows(r.Table7All, r.Table7ByAS, names)
}

// RenderFigure6 summarises the reboot-per-day series and firmware days.
func (r *Result) RenderFigure6() *tables.Table {
	return core.RenderFigure6Rows(r.RebootsPerDay, r.FirmwareDays)
}

// RenderFigure7 formats the P(ac|nw) ECDFs.
func (r *Result) RenderFigure7(names core.NameFunc) *tables.Table {
	return core.RenderFigure7Rows(r.Figure7, names)
}

// RenderFigure8 formats the P(ac|pw) ECDFs.
func (r *Result) RenderFigure8(names core.NameFunc) *tables.Table {
	return core.RenderFigure8Rows(r.Figure8, names)
}

// RenderChurn formats the day-windowed change-traffic series — the one
// live-only artefact, with no batch table to mirror.
func (r *Result) RenderChurn() *tables.Table {
	t := tables.New("Live analysis: address-change churn by study day",
		"Day", "Changes", "DiffBGP", "%", "Diff/16", "%", "Diff/8", "%", "Unrouted")
	for _, w := range r.Churn {
		day := tables.I(w.Day)
		if w.Day < 0 {
			day = "outside"
		}
		t.AddRow(day, tables.I(w.Row.Changes),
			tables.I(w.Row.DiffBGP), tables.Pct(w.Row.FracBGP()),
			tables.I(w.Row.DiffS16), tables.Pct(w.Row.FracS16()),
			tables.I(w.Row.DiffS8), tables.Pct(w.Row.FracS8()),
			tables.I(w.Row.Unrouted))
	}
	return t
}
