package pfx2as

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"dynaddr/internal/asdb"
	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

func mkEntries(specs ...string) []Entry {
	// "10.0.0.0/8=701"
	var out []Entry
	for _, s := range specs {
		eq := strings.IndexByte(s, '=')
		p := ip4.MustParsePrefix(s[:eq])
		var asn uint32
		for _, c := range s[eq+1:] {
			asn = asn*10 + uint32(c-'0')
		}
		out = append(out, Entry{Prefix: p, ASN: asdb.ASN(asn)})
	}
	return out
}

func TestTextRoundTrip(t *testing.T) {
	in := mkEntries("9.0.0.0/8=701", "91.55.0.0/16=3320", "193.0.0.0/21=3333")
	var buf bytes.Buffer
	if err := WriteText(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, in)
	}
}

func TestWriteTextFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, mkEntries("91.55.0.0/16=3320")); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "91.55.0.0\t16\t3320\n"; got != want {
		t.Errorf("WriteText = %q, want %q", got, want)
	}
}

func TestParseTextTolerance(t *testing.T) {
	src := `
# comment line

9.0.0.0	8	701
91.55.0.0	16	3320_3321
193.0.0.0	21	3333,3334
`
	got, err := ParseText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(got))
	}
	// Multi-origin and AS-set rows take the first origin.
	if got[1].ASN != 3320 || got[2].ASN != 3333 {
		t.Errorf("multi-origin handling wrong: %v", got)
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"9.0.0.0\t8",             // too few fields
		"9.0.0.0\t8\t701\textra", // too many fields
		"9.0.0.300\t8\t701",      // bad address
		"9.0.0.0\t40\t701",       // bad length
		"9.0.0.0\t8\tnotanumber", // bad ASN
	}
	for _, src := range bad {
		if _, err := ParseText(strings.NewReader(src)); err == nil {
			t.Errorf("ParseText(%q) should fail", src)
		}
	}
}

func TestLookupLongestMatch(t *testing.T) {
	tbl, err := NewTable(mkEntries(
		"91.0.0.0/8=100",
		"91.55.0.0/16=3320",
		"91.55.174.0/24=3321",
	))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		asn  asdb.ASN
		pfx  string
	}{
		{"91.55.174.103", 3321, "91.55.174.0/24"},
		{"91.55.1.1", 3320, "91.55.0.0/16"},
		{"91.200.0.1", 100, "91.0.0.0/8"},
	}
	for _, c := range cases {
		asn, pfx, ok := tbl.Lookup(ip4.MustParseAddr(c.addr))
		if !ok || asn != c.asn || pfx.String() != c.pfx {
			t.Errorf("Lookup(%s) = %v %v %v, want %v %v", c.addr, asn, pfx, ok, c.asn, c.pfx)
		}
	}
	if _, _, ok := tbl.Lookup(ip4.MustParseAddr("8.8.8.8")); ok {
		t.Error("unrouted address should miss")
	}
}

func TestLookupDefaultRoute(t *testing.T) {
	tbl, err := NewTable(mkEntries("0.0.0.0/0=1", "10.0.0.0/8=2"))
	if err != nil {
		t.Fatal(err)
	}
	if asn, _, ok := tbl.Lookup(ip4.MustParseAddr("200.1.2.3")); !ok || asn != 1 {
		t.Errorf("default route lookup = %v %v", asn, ok)
	}
	if asn, _, ok := tbl.Lookup(ip4.MustParseAddr("10.9.9.9")); !ok || asn != 2 {
		t.Errorf("more-specific under default = %v %v", asn, ok)
	}
}

func TestNewTableRejectsConflicts(t *testing.T) {
	_, err := NewTable(mkEntries("10.0.0.0/8=1", "10.0.0.0/8=2"))
	if err == nil {
		t.Error("conflicting origins for same prefix should fail")
	}
	// Identical duplicates collapse silently.
	tbl, err := NewTable(mkEntries("10.0.0.0/8=1", "10.0.0.0/8=1"))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("duplicate rows should collapse; Len = %d", tbl.Len())
	}
}

func TestNilAndEmptyTable(t *testing.T) {
	var nilTable *Table
	if _, _, ok := nilTable.Lookup(ip4.MustParseAddr("1.2.3.4")); ok {
		t.Error("nil table must miss")
	}
	empty, err := NewTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := empty.Lookup(ip4.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty table must miss")
	}
}

func TestTrieMatchesLinear(t *testing.T) {
	// Property: the trie agrees with the brute-force scan on random
	// tables and random addresses.
	r := rng.New(99)
	var entries []Entry
	seen := map[ip4.Prefix]bool{}
	for i := 0; i < 300; i++ {
		bits := 8 + r.Intn(17)
		p := ip4.PrefixFrom(ip4.Addr(r.Uint64()), bits)
		if seen[p] {
			continue
		}
		seen[p] = true
		entries = append(entries, Entry{Prefix: p, ASN: asdb.ASN(r.Intn(65000) + 1)})
	}
	tbl, err := NewTable(entries)
	if err != nil {
		t.Fatal(err)
	}
	f := func(u uint32) bool {
		a := ip4.Addr(u)
		asn1, pfx1, ok1 := tbl.Lookup(a)
		asn2, pfx2, ok2 := tbl.LookupLinear(a)
		return ok1 == ok2 && asn1 == asn2 && pfx1 == pfx2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMonthOf(t *testing.T) {
	cases := []struct {
		at   simclock.Time
		want Month
	}{
		{simclock.Date(2015, time.January, 1, 0, 0, 0), 201501},
		{simclock.Date(2015, time.January, 31, 23, 59, 59), 201501},
		{simclock.Date(2015, time.February, 1, 0, 0, 0), 201502},
		{simclock.Date(2015, time.December, 31, 23, 59, 59), 201512},
	}
	for _, c := range cases {
		if got := MonthOf(c.at); got != c.want {
			t.Errorf("MonthOf(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := Month(201503).String(); got != "2015-03" {
		t.Errorf("Month.String = %q", got)
	}
}

func TestSnapshotStorePerMonthLookup(t *testing.T) {
	// The same address can move origin between months; the store must
	// answer with the snapshot matching the observation time.
	jan, err := NewTable(mkEntries("91.55.0.0/16=3320"))
	if err != nil {
		t.Fatal(err)
	}
	feb, err := NewTable(mkEntries("91.55.0.0/16=6805"))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSnapshotStore()
	s.Put(201501, jan)
	s.Put(201502, feb)

	a := ip4.MustParseAddr("91.55.1.2")
	asn, _, ok := s.Lookup(a, simclock.Date(2015, time.January, 15, 0, 0, 0))
	if !ok || asn != 3320 {
		t.Errorf("January lookup = %v %v, want 3320", asn, ok)
	}
	asn, _, ok = s.Lookup(a, simclock.Date(2015, time.February, 15, 0, 0, 0))
	if !ok || asn != 6805 {
		t.Errorf("February lookup = %v %v, want 6805", asn, ok)
	}
	if _, _, ok := s.Lookup(a, simclock.Date(2015, time.March, 15, 0, 0, 0)); ok {
		t.Error("month without snapshot must miss")
	}
}

func TestSnapshotStoreMonthsSorted(t *testing.T) {
	s := NewSnapshotStore()
	empty, _ := NewTable(nil)
	s.Put(201512, empty)
	s.Put(201501, empty)
	s.Put(201506, empty)
	got := s.Months()
	want := []Month{201501, 201506, 201512}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Months = %v, want %v", got, want)
	}
}

func TestSnapshotStoreZeroValue(t *testing.T) {
	var s SnapshotStore
	if _, _, ok := s.Lookup(ip4.MustParseAddr("1.2.3.4"), simclock.StudyStart); ok {
		t.Error("zero-value store must miss")
	}
	empty, _ := NewTable(nil)
	s.Put(201501, empty) // must not panic
}

func buildBigTable(b *testing.B, n int) *Table {
	r := rng.New(7)
	seen := map[ip4.Prefix]bool{}
	var entries []Entry
	for len(entries) < n {
		bits := 8 + r.Intn(17)
		p := ip4.PrefixFrom(ip4.Addr(r.Uint64()), bits)
		if seen[p] {
			continue
		}
		seen[p] = true
		entries = append(entries, Entry{Prefix: p, ASN: asdb.ASN(r.Intn(65000) + 1)})
	}
	tbl, err := NewTable(entries)
	if err != nil {
		b.Fatal(err)
	}
	return tbl
}

func BenchmarkTrieLookup(b *testing.B) {
	tbl := buildBigTable(b, 10000)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Lookup(ip4.Addr(r.Uint64()))
	}
}

func BenchmarkLinearLookup(b *testing.B) {
	tbl := buildBigTable(b, 10000)
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.LookupLinear(ip4.Addr(r.Uint64()))
	}
}
