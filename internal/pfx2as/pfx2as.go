// Package pfx2as implements the CAIDA Routeviews prefix-to-AS dataset:
// the text interchange format, a longest-prefix-match table, and a
// month-keyed snapshot store.
//
// The paper (§3.3, §6) maps every observed address to its origin AS and
// BGP prefix using the CAIDA pfx2as snapshot for the month in which the
// address was observed, because routing tables drift over a year. The
// snapshot store reproduces that discipline: lookups are keyed by
// (address, month).
package pfx2as

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dynaddr/internal/asdb"
	"dynaddr/internal/ip4"
	"dynaddr/internal/simclock"
)

// Entry is one row of a pfx2as snapshot: a routed prefix and its origin AS.
type Entry struct {
	Prefix ip4.Prefix
	ASN    asdb.ASN
}

// WriteText serialises entries in the CAIDA pfx2as text format:
// network <TAB> prefix-length <TAB> origin-ASN, one row per line.
func WriteText(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if !e.Prefix.IsValid() {
			return fmt.Errorf("pfx2as: invalid prefix in entry %+v", e)
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", e.Prefix.Addr(), e.Prefix.Bits(), e.ASN); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseText parses the CAIDA pfx2as text format. Blank lines and lines
// beginning with '#' are ignored. CAIDA encodes multi-origin prefixes as
// "asn1_asn2" and AS-sets as "asn1,asn2"; like the paper we take the
// first origin.
func ParseText(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("pfx2as: line %d: want 3 fields, got %d", lineno, len(fields))
		}
		addr, err := ip4.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %v", lineno, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("pfx2as: line %d: bad prefix length %q", lineno, fields[1])
		}
		asnField := fields[2]
		if i := strings.IndexAny(asnField, "_,"); i >= 0 {
			asnField = asnField[:i]
		}
		asn, err := strconv.ParseUint(asnField, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: bad ASN %q", lineno, fields[2])
		}
		out = append(out, Entry{Prefix: ip4.PrefixFrom(addr, bits), ASN: asdb.ASN(asn)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Table answers longest-prefix-match queries over one snapshot. Build it
// with NewTable; the zero value matches nothing.
type Table struct {
	root    *node
	entries []Entry
}

type node struct {
	child [2]*node
	entry *Entry // set if a prefix terminates here
}

// NewTable builds a lookup table from entries. Duplicate (prefix) rows
// with conflicting origins are rejected; identical rows are collapsed.
func NewTable(entries []Entry) (*Table, error) {
	t := &Table{root: &node{}}
	t.entries = make([]Entry, 0, len(entries))
	for _, e := range entries {
		if !e.Prefix.IsValid() {
			return nil, fmt.Errorf("pfx2as: invalid prefix in entry %+v", e)
		}
		n := t.root
		addr := uint32(e.Prefix.Addr())
		for b := 0; b < e.Prefix.Bits(); b++ {
			bit := (addr >> (31 - uint(b))) & 1
			if n.child[bit] == nil {
				n.child[bit] = &node{}
			}
			n = n.child[bit]
		}
		if n.entry != nil {
			if n.entry.ASN != e.ASN {
				return nil, fmt.Errorf("pfx2as: conflicting origins for %v: %v and %v",
					e.Prefix, n.entry.ASN, e.ASN)
			}
			continue // identical duplicate
		}
		cp := e
		n.entry = &cp
		t.entries = append(t.entries, e)
	}
	sort.Slice(t.entries, func(i, j int) bool {
		return t.entries[i].Prefix.Compare(t.entries[j].Prefix) < 0
	})
	return t, nil
}

// Lookup returns the origin AS and matched prefix for a, using longest-
// prefix match. ok is false if no routed prefix covers a.
func (t *Table) Lookup(a ip4.Addr) (asn asdb.ASN, pfx ip4.Prefix, ok bool) {
	if t == nil || t.root == nil {
		return 0, ip4.Prefix{}, false
	}
	n := t.root
	var best *Entry
	if n.entry != nil {
		best = n.entry
	}
	addr := uint32(a)
	for b := 0; b < 32 && n != nil; b++ {
		bit := (addr >> (31 - uint(b))) & 1
		n = n.child[bit]
		if n != nil && n.entry != nil {
			best = n.entry
		}
	}
	if best == nil {
		return 0, ip4.Prefix{}, false
	}
	return best.ASN, best.Prefix, true
}

// LookupLinear is a reference implementation that scans all entries; it
// exists to cross-check the trie and for the trie-vs-linear ablation
// bench.
func (t *Table) LookupLinear(a ip4.Addr) (asn asdb.ASN, pfx ip4.Prefix, ok bool) {
	var best *Entry
	for i := range t.entries {
		e := &t.entries[i]
		if e.Prefix.Contains(a) && (best == nil || e.Prefix.Bits() > best.Prefix.Bits()) {
			best = e
		}
	}
	if best == nil {
		return 0, ip4.Prefix{}, false
	}
	return best.ASN, best.Prefix, true
}

// Entries returns the table's rows sorted by prefix.
func (t *Table) Entries() []Entry { return t.entries }

// Len returns the number of distinct prefixes in the table.
func (t *Table) Len() int { return len(t.entries) }

// Month identifies a pfx2as snapshot month, encoded as year*100+month,
// e.g. 201503 for March 2015.
type Month int

// MonthOf returns the snapshot month containing t.
func MonthOf(t simclock.Time) Month {
	std := t.Std()
	return Month(std.Year()*100 + int(std.Month()))
}

// String formats the month as "2015-03".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", int(m)/100, int(m)%100) }

// SnapshotStore holds one Table per month, mirroring CAIDA's monthly
// publication cadence.
type SnapshotStore struct {
	tables map[Month]*Table
}

// NewSnapshotStore returns an empty store.
func NewSnapshotStore() *SnapshotStore {
	return &SnapshotStore{tables: make(map[Month]*Table)}
}

// Put registers the snapshot for a month, replacing any previous one.
func (s *SnapshotStore) Put(m Month, t *Table) {
	if s.tables == nil {
		s.tables = make(map[Month]*Table)
	}
	s.tables[m] = t
}

// Table returns the snapshot for a month, if present.
func (s *SnapshotStore) Table(m Month) (*Table, bool) {
	t, ok := s.tables[m]
	return t, ok
}

// Months returns the registered months in ascending order.
func (s *SnapshotStore) Months() []Month {
	out := make([]Month, 0, len(s.tables))
	for m := range s.tables {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lookup maps an address observed at time at to its origin AS and BGP
// prefix, using that month's snapshot — the paper's per-month mapping
// discipline. ok is false if the month has no snapshot or the address is
// unrouted in it.
func (s *SnapshotStore) Lookup(a ip4.Addr, at simclock.Time) (asn asdb.ASN, pfx ip4.Prefix, ok bool) {
	t, have := s.tables[MonthOf(at)]
	if !have {
		return 0, ip4.Prefix{}, false
	}
	return t.Lookup(a)
}
