package simclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestStudyBounds(t *testing.T) {
	if got := StudyStart.Std().Format("2006-01-02"); got != "2015-01-01" {
		t.Errorf("StudyStart = %s", got)
	}
	if got := StudyEnd.Std().Format("2006-01-02"); got != "2016-01-01" {
		t.Errorf("StudyEnd = %s", got)
	}
	if days := StudyEnd.Sub(StudyStart) / Day; days != 365 {
		t.Errorf("study year has %d days, want 365", days)
	}
}

func TestAddSub(t *testing.T) {
	a := Date(2015, time.March, 10, 12, 0, 0)
	b := a.Add(36 * Hour)
	if b.Sub(a) != 36*Hour {
		t.Errorf("Sub = %v, want 36h", b.Sub(a))
	}
	if !a.Before(b) || !b.After(a) {
		t.Error("Before/After inconsistent")
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		t    Time
		want int
	}{
		{Date(2015, time.January, 1, 0, 0, 0), 0},
		{Date(2015, time.January, 1, 23, 59, 59), 23},
		{Date(2015, time.June, 15, 4, 30, 0), 4},
	}
	for _, c := range cases {
		if got := c.t.HourOfDay(); got != c.want {
			t.Errorf("HourOfDay(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDayWithinStudy(t *testing.T) {
	if got := StudyStart.DayWithinStudy(); got != 0 {
		t.Errorf("day of Jan 1 = %d, want 0", got)
	}
	dec31 := Date(2015, time.December, 31, 12, 0, 0)
	if got := dec31.DayWithinStudy(); got != 364 {
		t.Errorf("day of Dec 31 = %d, want 364", got)
	}
	if got := StudyEnd.DayWithinStudy(); got != -1 {
		t.Errorf("Jan 1 2016 = %d, want -1", got)
	}
	if got := (StudyStart - 1).DayWithinStudy(); got != -1 {
		t.Errorf("Dec 31 2014 = %d, want -1", got)
	}
}

func TestTruncateDay(t *testing.T) {
	at := Date(2015, time.July, 4, 17, 33, 9)
	want := Date(2015, time.July, 4, 0, 0, 0)
	if got := at.TruncateDay(); got != want {
		t.Errorf("TruncateDay = %v, want %v", got, want)
	}
	if got := want.TruncateDay(); got != want {
		t.Error("TruncateDay of midnight must be identity")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{24 * Hour, "1d"},
		{36 * Hour, "1d12h"},
		{90 * Second, "1m30s"},
		{5 * Minute, "5m"},
		{0, "0s"},
		{-2 * Day, "-2d"},
		{Week, "7d"},
		{23*Hour + 37*Minute + 12*Second, "23h37m"},
		{Day + 30*Minute, "1d"}, // non-adjacent second unit is dropped
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationHours(t *testing.T) {
	if got := (90 * Minute).Hours(); got != 1.5 {
		t.Errorf("Hours = %v, want 1.5", got)
	}
}

func TestTimeStringStyle(t *testing.T) {
	at := Date(2015, time.January, 2, 2, 19, 16)
	if got := at.String(); got != "Jan  2 02:19:16 2015" {
		t.Errorf("String = %q", got)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	q.Push(30, 1, "c")
	q.Push(10, 2, "a")
	q.Push(20, 3, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Data.(string))
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("pop order = %v", got)
	}
}

func TestEventQueueStableTies(t *testing.T) {
	var q EventQueue
	for i := 0; i < 100; i++ {
		q.Push(5, i, i)
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop().Data.(int); got != i {
			t.Fatalf("tie order broken: got %d at position %d", got, i)
		}
	}
}

func TestEventQueuePeekAndEmpty(t *testing.T) {
	var q EventQueue
	if q.Pop() != nil || q.Peek() != nil {
		t.Error("empty queue must return nil")
	}
	q.Push(7, 0, nil)
	if q.Peek().At != 7 {
		t.Error("Peek returned wrong event")
	}
	if q.Len() != 1 {
		t.Error("Peek must not remove")
	}
	q.Pop()
	if q.Len() != 0 {
		t.Error("queue should be empty after pop")
	}
}

func TestEventQueueHeapProperty(t *testing.T) {
	f := func(times []int64) bool {
		var q EventQueue
		for _, at := range times {
			q.Push(Time(at), 0, nil)
		}
		prev := Time(math.MinInt64)
		for q.Len() > 0 {
			e := q.Pop()
			if e.At < prev {
				return false
			}
			prev = e.At
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEventQueue(b *testing.B) {
	var q EventQueue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Push(Time(i%1000), 0, nil)
		if q.Len() > 512 {
			q.Pop()
		}
	}
}
