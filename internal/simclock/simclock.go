// Package simclock provides the simulated-time kernel for the dataset
// generator: a second-resolution Time type anchored at the Unix epoch, a
// Duration type with day/week constants, calendar helpers for the paper's
// measurement year (2015), and a deterministic event queue.
//
// Wall-clock time is never read anywhere in this repository; all times
// flow from configuration through this package, which is what makes the
// generated datasets reproducible byte-for-byte.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a simulated instant, in seconds since the Unix epoch (UTC).
type Time int64

// Duration is a span of simulated time in seconds.
type Duration int64

// Duration constants. The paper reports address durations in hours with
// modes at multiples of 24 hours, so Day and Week appear throughout.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
	Week   Duration = 7 * Day
)

// Date constructs a Time from a UTC calendar date.
func Date(year int, month time.Month, day, hour, min, sec int) Time {
	return Time(time.Date(year, month, day, hour, min, sec, 0, time.UTC).Unix())
}

// The paper's measurement interval: calendar year 2015.
var (
	StudyStart = Date(2015, time.January, 1, 0, 0, 0)
	StudyEnd   = Date(2016, time.January, 1, 0, 0, 0)
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Std converts t to a standard library time.Time in UTC.
func (t Time) Std() time.Time { return time.Unix(int64(t), 0).UTC() }

// String formats t like "Jan  2 15:04:05 2015" (the connection-log style).
func (t Time) String() string { return t.Std().Format("Jan _2 15:04:05 2006") }

// HourOfDay returns the GMT hour of day in [0, 24). Figures 4 and 5 bin
// periodic address changes by this value.
func (t Time) HourOfDay() int { return int((int64(t) % 86400) / 3600) }

// DayWithinStudy returns the zero-based day index of t within the study
// year, or -1 if t falls outside it. Figure 6 bins reboots by this value.
func (t Time) DayWithinStudy() int {
	if t < StudyStart || t >= StudyEnd {
		return -1
	}
	return int(t.Sub(StudyStart) / Day)
}

// TruncateDay returns the midnight (UTC) at or before t.
func (t Time) TruncateDay() Time { return t - Time(int64(t)%86400) }

// Hours returns d as floating-point hours, the unit of the paper's
// address-duration plots.
func (d Duration) Hours() float64 { return float64(d) / 3600 }

// Seconds returns d as integer seconds.
func (d Duration) Seconds() int64 { return int64(d) }

// Std converts d to a standard library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) * time.Second }

// String formats d compactly using the two most significant units,
// e.g. "2d", "1d12h", "23h37m", "1m30s", "45s".
func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg, d = "-", -d
	}
	if d == 0 {
		return "0s"
	}
	type unit struct {
		span Duration
		tag  string
	}
	units := []unit{{Day, "d"}, {Hour, "h"}, {Minute, "m"}, {Second, "s"}}
	out := neg
	emitted := 0
	for _, u := range units {
		if emitted >= 2 {
			break
		}
		n := d / u.span
		d %= u.span
		if n == 0 {
			if emitted > 0 {
				break // keep the two units adjacent: "1d12h", never "1d30m"
			}
			continue
		}
		out += fmt.Sprintf("%d%s", n, u.tag)
		emitted++
	}
	return out
}

// Event is an entry in an EventQueue.
type Event struct {
	At   Time
	Kind int
	Data any

	seq int // tiebreaker: insertion order for equal times
}

// EventQueue is a deterministic min-heap of events ordered by time, with
// insertion order breaking ties so that replays are exact.
// The zero value is an empty, usable queue.
type EventQueue struct {
	h   eventHeap
	seq int
}

// Push schedules an event.
func (q *EventQueue) Push(at Time, kind int, data any) {
	q.seq++
	heap.Push(&q.h, &Event{At: at, Kind: kind, Data: data, seq: q.seq})
}

// Pop removes and returns the earliest event, or nil if the queue is empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil if empty.
func (q *EventQueue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
