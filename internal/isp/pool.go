// Package isp defines ISP behaviour profiles — assignment backend,
// periodic renumbering policy, pool geometry — and the concrete dynamic
// address pool shared by an ISP's customers.
//
// The profiles in profiles.go encode the per-AS ground truth the paper
// infers in Tables 5-7: which ISPs renumber periodically and with what
// period, which renumber on outages of any duration (PPP) versus only on
// long outages (DHCP), and how far across prefixes new addresses stray.
package isp

import (
	"fmt"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
)

// AddressPool is a dynamic address pool spanning one or more BGP
// prefixes. It satisfies both dhcp.Pool and ppp.Pool.
//
// CrossPrefixProb controls prefix locality on reassignment: the paper's
// Table 7 finds that for most ISPs roughly half of address changes land
// in a different BGP prefix, so pools are genuinely striped across
// prefixes rather than per-subnet.
type AddressPool struct {
	prefixes        []ip4.Prefix
	crossPrefixProb float64
	rnd             *rng.RNG
	used            map[ip4.Addr]bool
}

// NewAddressPool builds a pool over the given prefixes.
func NewAddressPool(prefixes []ip4.Prefix, crossPrefixProb float64, rnd *rng.RNG) (*AddressPool, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("isp: pool needs at least one prefix")
	}
	for i, p := range prefixes {
		if !p.IsValid() {
			return nil, fmt.Errorf("isp: invalid prefix at %d", i)
		}
		if p.Bits() > 30 {
			return nil, fmt.Errorf("isp: prefix %v too small for a customer pool", p)
		}
		for j := i + 1; j < len(prefixes); j++ {
			if p.Overlaps(prefixes[j]) {
				return nil, fmt.Errorf("isp: pool prefixes overlap: %v, %v", p, prefixes[j])
			}
		}
	}
	if crossPrefixProb < 0 || crossPrefixProb > 1 {
		return nil, fmt.Errorf("isp: CrossPrefixProb %v outside [0,1]", crossPrefixProb)
	}
	if rnd == nil {
		return nil, fmt.Errorf("isp: nil rng")
	}
	cp := make([]ip4.Prefix, len(prefixes))
	copy(cp, prefixes)
	return &AddressPool{
		prefixes:        cp,
		crossPrefixProb: crossPrefixProb,
		rnd:             rnd,
		used:            make(map[ip4.Addr]bool),
	}, nil
}

// Prefixes returns the pool's prefixes.
func (p *AddressPool) Prefixes() []ip4.Prefix {
	out := make([]ip4.Prefix, len(p.prefixes))
	copy(out, p.prefixes)
	return out
}

// InUse returns the number of currently held addresses.
func (p *AddressPool) InUse() int { return len(p.used) }

// prefixOf returns the index of the pool prefix containing a, or -1.
func (p *AddressPool) prefixOf(a ip4.Addr) int {
	for i, pfx := range p.prefixes {
		if pfx.Contains(a) {
			return i
		}
	}
	return -1
}

// Acquire hands out an unused address, never equal to exclude. When
// exclude identifies the customer's previous prefix, the new address
// comes from a different prefix with probability CrossPrefixProb
// (when the pool has more than one).
func (p *AddressPool) Acquire(exclude ip4.Addr) ip4.Addr {
	idx := -1
	if exclude.IsValid() {
		idx = p.prefixOf(exclude)
	}
	var pfxIdx int
	switch {
	case idx < 0 || len(p.prefixes) == 1:
		pfxIdx = p.rnd.Intn(len(p.prefixes))
	case p.rnd.Bool(p.crossPrefixProb):
		// Different prefix than the previous address.
		pfxIdx = p.rnd.Intn(len(p.prefixes) - 1)
		if pfxIdx >= idx {
			pfxIdx++
		}
	default:
		pfxIdx = idx
	}
	pfx := p.prefixes[pfxIdx]
	// Random probing; pools are orders of magnitude larger than the
	// simulated customer count, so collisions are rare. Fall back to a
	// bounded linear sweep for pathological saturation.
	for attempt := 0; attempt < 64; attempt++ {
		a := pfx.Nth(p.rnd.Uint64())
		if a != exclude && !p.used[a] && a != pfx.First() && a != pfx.Last() {
			p.used[a] = true
			return a
		}
	}
	for _, tryPfx := range p.prefixes {
		n := tryPfx.NumAddrs()
		for i := uint64(1); i < n-1; i++ {
			a := tryPfx.Nth(i)
			if a != exclude && !p.used[a] {
				p.used[a] = true
				return a
			}
		}
	}
	panic(fmt.Sprintf("isp: address pool exhausted (%d in use)", len(p.used)))
}

// TryReacquire re-marks addr as held if it is free and belongs to the
// pool; it reports success. DHCP servers honouring RFC 2131 §4.3.1 use
// this to give a returning client its old address back.
func (p *AddressPool) TryReacquire(addr ip4.Addr) bool {
	if p.prefixOf(addr) < 0 || p.used[addr] {
		return false
	}
	p.used[addr] = true
	return true
}

// Release returns addr to the pool.
func (p *AddressPool) Release(addr ip4.Addr) { delete(p.used, addr) }
