package isp

import (
	"fmt"

	"dynaddr/internal/asdb"
	"dynaddr/internal/outage"
	"dynaddr/internal/simclock"
)

// AssignKind selects the address-assignment backend an ISP uses.
type AssignKind int

// Assignment backends.
const (
	// DHCP: leases renew in place; only outages past lease expiry plus
	// pool pressure change the address (paper §2.1).
	DHCP AssignKind = iota
	// PPP: PPPoE + Radius; every session establishment draws a fresh
	// address, and the ISP may cap session lifetime (paper §2.2, §4).
	PPP
	// Static: the address never changes. Models the paper's 3,073
	// never-changed probes (Table 2).
	Static
)

// String names the assignment kind.
func (k AssignKind) String() string {
	switch k {
	case DHCP:
		return "dhcp"
	case PPP:
		return "ppp"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("AssignKind(%d)", int(k))
	}
}

// Cohort is a sub-population of an ISP's customers sharing one forced
// session lifetime. Most ISPs have a single cohort; the paper finds
// ISPs like Proximus (36h and 24h) and Orange Polska (22h and 24h) with
// several, and partially-periodic ISPs like BT where most customers have
// no limit at all.
type Cohort struct {
	// Period is the forced session lifetime; zero means unlimited.
	Period simclock.Duration
	// Weight is the relative share of customers in this cohort.
	Weight float64
}

// Profile is the ground-truth behaviour of one ISP.
type Profile struct {
	Name    string
	ASN     asdb.ASN
	Country string // ISO code; empty means pan-European deployment
	Kind    AssignKind

	// SiblingASN, when non-zero, is a second ASN of the same operator;
	// half the pool's prefixes are originated from it. Address changes
	// across the pair appear as cross-AS changes (paper §3.3).
	SiblingASN asdb.ASN

	// Cohorts describes forced-renumbering sub-populations (PPP only).
	// Empty means a single unlimited cohort.
	Cohorts []Cohort

	// SyncFrac is the fraction of periodic customers whose CPE defers the
	// periodic reconnect to a nightly window [SyncStartHour, SyncEndHour)
	// GMT — the DTAG pattern of Figure 5. Zero gives Orange's
	// free-running clock (Figure 4).
	SyncFrac      float64
	SyncStartHour int
	SyncEndHour   int

	// SkipProb is the probability a scheduled forced disconnect is
	// skipped, which doubles the observed duration — the paper's
	// "harmonic" durations (§4.4.2).
	SkipProb float64
	// SameAddrProb is the probability a PPP reconnect receives the same
	// address again, the other harmonic source.
	SameAddrProb float64
	// JitterProb is the probability that a periodic customer's forced
	// disconnect drifts to a random non-harmonic time, breaking both the
	// MAX<=d and Harmonic properties (e.g. Global Village Telecom).
	JitterProb float64

	// OutageRenumberFrac (PPP only) is the fraction of customers whose
	// lines renumber on every reconnect. Real ISPs mix technologies —
	// the paper's Table 6 shows e.g. only 38% of SFR probes with
	// P(ac|nw) > 0.8 while ISKON hits 100% — so the remainder of a PPP
	// ISP's customers keep their address across interruptions.
	OutageRenumberFrac float64

	// DHCP parameters.
	Lease       simclock.Duration
	ReclaimMean simclock.Duration

	// Pool geometry.
	NumPrefixes     int
	PrefixBits      int
	CrossPrefixProb float64

	// Outage exposes this ISP's outage process; zero value means
	// outage.DefaultConfig().
	Outage outage.Config

	// AdminRenumberDay, when positive, is the zero-based study day on
	// which the ISP renumbers its whole customer base en masse — the
	// paper's administrative renumbering (§2.3), of which it found a
	// single instance in 2015. The rollout spreads over a few hours.
	AdminRenumberDay int

	// DefaultProbes scales the synthetic deployment to mirror the paper's
	// per-AS probe counts.
	DefaultProbes int
}

// Validate checks internal consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("isp: profile without name")
	}
	if p.ASN == 0 {
		return fmt.Errorf("isp: profile %q without ASN", p.Name)
	}
	switch p.Kind {
	case DHCP:
		if p.Lease <= 0 || p.ReclaimMean <= 0 {
			return fmt.Errorf("isp: DHCP profile %q needs Lease and ReclaimMean", p.Name)
		}
		if len(p.Cohorts) > 0 {
			return fmt.Errorf("isp: DHCP profile %q must not define periodic cohorts", p.Name)
		}
	case PPP:
		for _, c := range p.Cohorts {
			if c.Weight <= 0 {
				return fmt.Errorf("isp: profile %q cohort with non-positive weight", p.Name)
			}
			if c.Period < 0 {
				return fmt.Errorf("isp: profile %q cohort with negative period", p.Name)
			}
		}
		if p.OutageRenumberFrac <= 0 || p.OutageRenumberFrac > 1 {
			return fmt.Errorf("isp: PPP profile %q needs OutageRenumberFrac in (0,1], got %v", p.Name, p.OutageRenumberFrac)
		}
	case Static:
	default:
		return fmt.Errorf("isp: profile %q has unknown kind %d", p.Name, p.Kind)
	}
	for _, frac := range []float64{p.SyncFrac, p.SkipProb, p.SameAddrProb, p.JitterProb, p.CrossPrefixProb} {
		if frac < 0 || frac > 1 {
			return fmt.Errorf("isp: profile %q has probability %v outside [0,1]", p.Name, frac)
		}
	}
	if p.SyncFrac > 0 {
		if p.SyncStartHour < 0 || p.SyncStartHour > 23 || p.SyncEndHour < 1 || p.SyncEndHour > 24 || p.SyncEndHour <= p.SyncStartHour {
			return fmt.Errorf("isp: profile %q has bad sync window [%d,%d)", p.Name, p.SyncStartHour, p.SyncEndHour)
		}
	}
	if p.NumPrefixes < 1 {
		return fmt.Errorf("isp: profile %q needs at least one prefix", p.Name)
	}
	if p.PrefixBits < 8 || p.PrefixBits > 24 {
		return fmt.Errorf("isp: profile %q prefix length /%d outside /8../24", p.Name, p.PrefixBits)
	}
	if p.DefaultProbes < 0 {
		return fmt.Errorf("isp: profile %q has negative probe count", p.Name)
	}
	if p.AdminRenumberDay < 0 || p.AdminRenumberDay > 364 {
		return fmt.Errorf("isp: profile %q admin renumber day %d outside study year", p.Name, p.AdminRenumberDay)
	}
	return nil
}

// OutageConfig returns the ISP's outage process configuration, falling
// back to the package default when unset.
func (p Profile) OutageConfig() outage.Config {
	if p.Outage == (outage.Config{}) {
		return outage.DefaultConfig()
	}
	return p.Outage
}

// PickCohort draws a cohort for one customer according to the weights.
// ISPs without cohorts yield the unlimited cohort.
func (p Profile) PickCohort(f func(weights []float64) int) Cohort {
	if len(p.Cohorts) == 0 {
		return Cohort{Period: 0, Weight: 1}
	}
	weights := make([]float64, len(p.Cohorts))
	for i, c := range p.Cohorts {
		weights[i] = c.Weight
	}
	return p.Cohorts[f(weights)]
}

// Periodic reports whether any cohort has a forced session lifetime.
func (p Profile) Periodic() bool {
	for _, c := range p.Cohorts {
		if c.Period > 0 {
			return true
		}
	}
	return false
}
