package isp

import (
	"testing"

	"dynaddr/internal/ip4"
	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

func newPool(t *testing.T, cross float64, prefixes ...string) *AddressPool {
	t.Helper()
	var ps []ip4.Prefix
	for _, s := range prefixes {
		ps = append(ps, ip4.MustParsePrefix(s))
	}
	p, err := NewAddressPool(ps, cross, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewAddressPool(nil, 0, rng.New(1)); err == nil {
		t.Error("empty prefix list should fail")
	}
	if _, err := NewAddressPool([]ip4.Prefix{{}}, 0, rng.New(1)); err == nil {
		t.Error("invalid prefix should fail")
	}
	overlapping := []ip4.Prefix{
		ip4.MustParsePrefix("10.0.0.0/16"),
		ip4.MustParsePrefix("10.0.1.0/24"),
	}
	if _, err := NewAddressPool(overlapping, 0, rng.New(1)); err == nil {
		t.Error("overlapping prefixes should fail")
	}
	one := []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/16")}
	if _, err := NewAddressPool(one, 1.5, rng.New(1)); err == nil {
		t.Error("bad CrossPrefixProb should fail")
	}
	if _, err := NewAddressPool(one, 0.5, nil); err == nil {
		t.Error("nil rng should fail")
	}
	tiny := []ip4.Prefix{ip4.MustParsePrefix("10.0.0.0/31")}
	if _, err := NewAddressPool(tiny, 0, rng.New(1)); err == nil {
		t.Error("/31 pool should fail")
	}
}

func TestAcquireUniqueInsidePool(t *testing.T) {
	p := newPool(t, 0.5, "10.0.0.0/20", "10.1.0.0/20")
	seen := map[ip4.Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := p.Acquire(0)
		if seen[a] {
			t.Fatalf("address %v handed out twice", a)
		}
		seen[a] = true
		inside := false
		for _, pfx := range p.Prefixes() {
			if pfx.Contains(a) {
				inside = true
			}
		}
		if !inside {
			t.Fatalf("address %v outside pool prefixes", a)
		}
	}
	if p.InUse() != 1000 {
		t.Errorf("InUse = %d, want 1000", p.InUse())
	}
}

func TestAcquireNeverReturnsExclude(t *testing.T) {
	p := newPool(t, 0, "10.0.0.0/24")
	first := p.Acquire(0)
	p.Release(first)
	for i := 0; i < 200; i++ {
		a := p.Acquire(first)
		if a == first {
			t.Fatal("Acquire returned the excluded address")
		}
		p.Release(a)
	}
}

func TestCrossPrefixProbability(t *testing.T) {
	p := newPool(t, 0.7, "10.0.0.0/16", "10.1.0.0/16", "10.2.0.0/16")
	prev := p.Acquire(0)
	cross, total := 0, 2000
	for i := 0; i < total; i++ {
		p.Release(prev)
		next := p.Acquire(prev)
		if !prev.Slash16().Contains(next) {
			cross++
		}
		prev = next
	}
	frac := float64(cross) / float64(total)
	if frac < 0.63 || frac > 0.77 {
		t.Errorf("cross-prefix fraction = %v, want ~0.7", frac)
	}
}

func TestCrossPrefixZeroKeepsPrefix(t *testing.T) {
	p := newPool(t, 0, "10.0.0.0/16", "10.1.0.0/16")
	prev := p.Acquire(0)
	for i := 0; i < 300; i++ {
		p.Release(prev)
		next := p.Acquire(prev)
		if !prev.Slash16().Contains(next) {
			t.Fatal("CrossPrefixProb 0 must keep the customer in its prefix")
		}
		prev = next
	}
}

func TestTryReacquire(t *testing.T) {
	p := newPool(t, 0, "10.0.0.0/24")
	a := p.Acquire(0)
	if p.TryReacquire(a) {
		t.Error("held address must not be reacquirable")
	}
	p.Release(a)
	if !p.TryReacquire(a) {
		t.Error("released address should be reacquirable")
	}
	outside := ip4.MustParseAddr("192.0.2.1")
	if p.TryReacquire(outside) {
		t.Error("address outside pool must not be reacquirable")
	}
}

func TestPoolSweepWhenSaturated(t *testing.T) {
	// A /26 pool (62 usable hosts minus network/broadcast handling)
	// forces the linear sweep path.
	p := newPool(t, 0, "10.0.0.0/26")
	var got []ip4.Addr
	for i := 0; i < 60; i++ {
		got = append(got, p.Acquire(0))
	}
	seen := map[ip4.Addr]bool{}
	for _, a := range got {
		if seen[a] {
			t.Fatal("duplicate under saturation")
		}
		seen[a] = true
	}
}

func TestProfileValidate(t *testing.T) {
	good := Profile{
		Name: "X", ASN: 1, Kind: PPP,
		Cohorts:            []Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
		OutageRenumberFrac: 1,
		NumPrefixes:        1, PrefixBits: 16,
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	cases := []Profile{
		{},                            // no name
		{Name: "X"},                   // no ASN
		{Name: "X", ASN: 1, Kind: 42}, // unknown kind
		{Name: "X", ASN: 1, Kind: DHCP, NumPrefixes: 1, PrefixBits: 16},                                                                      // DHCP without lease
		{Name: "X", ASN: 1, Kind: DHCP, Lease: 1, ReclaimMean: 1, Cohorts: []Cohort{{Period: 1, Weight: 1}}, NumPrefixes: 1, PrefixBits: 16}, // DHCP with cohorts
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 0, NumPrefixes: 1, PrefixBits: 16},                                                // PPP without renumber frac
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 1, NumPrefixes: 0, PrefixBits: 16},                                                // no prefixes
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 1, NumPrefixes: 1, PrefixBits: 30},                                                // bad bits
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 1, NumPrefixes: 1, PrefixBits: 16, SkipProb: 2},                                   // bad prob
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 1, NumPrefixes: 1, PrefixBits: 16,
			SyncFrac: 0.5, SyncStartHour: 6, SyncEndHour: 3}, // inverted window
		{Name: "X", ASN: 1, Kind: PPP, OutageRenumberFrac: 1, NumPrefixes: 1, PrefixBits: 16,
			Cohorts: []Cohort{{Period: 1, Weight: 0}}}, // zero weight
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, p)
		}
	}
}

func TestPaperProfilesValid(t *testing.T) {
	ps := PaperProfiles()
	if err := ValidateAll(ps); err != nil {
		t.Fatal(err)
	}
	if len(ps) < 30 {
		t.Errorf("registry has only %d profiles", len(ps))
	}
}

func TestPaperProfilesCoverTables(t *testing.T) {
	ps := PaperProfiles()
	// Every AS in the paper's Table 5 must exist and be periodic.
	periodicNames := []string{
		"Orange", "DTAG", "Telefonica DE 2", "Telefonica DE 1",
		"PJSC Rostelecom", "BT", "Proximus", "A1 Telekom",
		"Vodafone GmbH", "Hrvatski", "ISKON", "ANTEL",
		"Global Village Telecom", "Mauritius Telecom", "JSC Kazakhtelecom",
		"Orange Polska", "VIPnet", "Digi Tavkozlesi", "Free SAS",
		"SONATEL-AS", "Net by Net",
	}
	for _, name := range periodicNames {
		p, ok := FindProfile(ps, name)
		if !ok {
			t.Errorf("missing Table 5 profile %q", name)
			continue
		}
		if !p.Periodic() {
			t.Errorf("profile %q should be periodic", name)
		}
		if p.Kind != PPP {
			t.Errorf("periodic profile %q should use PPP", name)
		}
	}
	// Non-periodic comparison ISPs.
	for _, name := range []string{"LGI", "Verizon", "Comcast", "Kabel Deutschland"} {
		p, ok := FindProfile(ps, name)
		if !ok {
			t.Errorf("missing profile %q", name)
			continue
		}
		if p.Periodic() || p.Kind != DHCP {
			t.Errorf("profile %q should be non-periodic DHCP", name)
		}
	}
	// Ground truth of Table 5's headline periods.
	if p, _ := FindProfile(ps, "Orange"); p.Cohorts[0].Period != 168*simclock.Hour {
		t.Error("Orange period should be one week")
	}
	if p, _ := FindProfile(ps, "DTAG"); p.Cohorts[0].Period != 24*simclock.Hour {
		t.Error("DTAG period should be 24h")
	}
	if p, _ := FindProfile(ps, "ANTEL"); p.Cohorts[0].Period != 12*simclock.Hour {
		t.Error("ANTEL period should be 12h")
	}
}

func TestPickCohort(t *testing.T) {
	p := Profile{Cohorts: []Cohort{{Period: 22 * simclock.Hour, Weight: 0.5}, {Period: 24 * simclock.Hour, Weight: 0.5}}}
	c := p.PickCohort(func(w []float64) int {
		if len(w) != 2 {
			t.Fatalf("weights = %v", w)
		}
		return 1
	})
	if c.Period != 24*simclock.Hour {
		t.Errorf("PickCohort = %+v", c)
	}
	empty := Profile{}
	c = empty.PickCohort(func(w []float64) int { t.Fatal("must not be called"); return 0 })
	if c.Period != 0 {
		t.Error("empty cohorts must yield the unlimited cohort")
	}
}

func TestOutageConfigFallback(t *testing.T) {
	p := Profile{}
	cfg := p.OutageConfig()
	if cfg.PowerPerYear <= 0 {
		t.Error("fallback outage config should have positive rates")
	}
}

func TestFindProfile(t *testing.T) {
	ps := PaperProfiles()
	if _, ok := FindProfile(ps, "Orange"); !ok {
		t.Error("Orange should be found")
	}
	if _, ok := FindProfile(ps, "Nonexistent ISP"); ok {
		t.Error("unknown name should not be found")
	}
}

func TestValidateAllCatchesDuplicateASN(t *testing.T) {
	ps := []Profile{
		{Name: "A", ASN: 5, Kind: Static, NumPrefixes: 1, PrefixBits: 16},
		{Name: "B", ASN: 5, Kind: Static, NumPrefixes: 1, PrefixBits: 16},
	}
	if err := ValidateAll(ps); err == nil {
		t.Error("duplicate ASN should fail")
	}
}

func TestAssignKindString(t *testing.T) {
	if DHCP.String() != "dhcp" || PPP.String() != "ppp" || Static.String() != "static" {
		t.Error("AssignKind.String wrong")
	}
	if AssignKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}
