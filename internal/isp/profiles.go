package isp

import (
	"fmt"

	"dynaddr/internal/outage"
	"dynaddr/internal/simclock"
)

// The registry below encodes, as generative ground truth, the per-AS
// behaviour the paper *infers* in Tables 5-7 and Figures 2-9: assignment
// backend, periodic cohorts and their periods, harmonic-producing skip
// probabilities, synchronisation windows, outage renumbering shares, and
// prefix-spread. Experiments then check that the analysis pipeline
// recovers these parameters from the generated datasets.

const (
	h  = simclock.Hour
	dy = simclock.Day
)

// PaperProfiles returns the profiles for every autonomous system named
// in the paper's tables, plus synthetic continental filler ISPs (the
// paper's Figure 1 aggregates whole continents) and static-address ISPs
// that supply the never-changed probe population of Table 2.
func PaperProfiles() []Profile {
	ps := []Profile{
		// ----- Figure 2 / Table 5 headline ISPs -----
		{
			Name: "Orange", ASN: 3215, Country: "FR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 168 * h, Weight: 0.91}, {Period: 0, Weight: 0.09}},
			SkipProb: 0.0004, SameAddrProb: 0.004, JitterProb: 0.0,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        8, PrefixBits: 16, CrossPrefixProb: 0.68,
			DefaultProbes: 122,
		},
		{
			Name: "DTAG", ASN: 3320, Country: "DE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.81}, {Period: 0, Weight: 0.19}},
			SyncFrac: 0.75, SyncStartHour: 0, SyncEndHour: 6,
			SkipProb: 0.0007, SameAddrProb: 0.001,
			OutageRenumberFrac: 0.70,
			NumPrefixes:        12, PrefixBits: 16, CrossPrefixProb: 0.24,
			DefaultProbes: 63,
		},
		{
			Name: "BT", ASN: 2856, Country: "GB", Kind: PPP,
			Cohorts:  []Cohort{{Period: 337 * h, Weight: 0.20}, {Period: 0, Weight: 0.80}},
			SkipProb: 0.03, SameAddrProb: 0.01, JitterProb: 0.015,
			OutageRenumberFrac: 0.65,
			NumPrefixes:        6, PrefixBits: 14, CrossPrefixProb: 0.44,
			DefaultProbes: 67,
		},
		{
			Name: "LGI", ASN: 6830, Country: "", Kind: DHCP,
			Lease: 3 * h, ReclaimMean: 36 * h,
			NumPrefixes: 6, PrefixBits: 16, CrossPrefixProb: 0.56,
			// LGI's cable plant is flaky: many outages with a fat tail,
			// which (with the modest reclaim mean) is what gives its
			// probes enough address changes to bound durations at all.
			Outage: outage.Config{
				PowerPerYear: 20, NetworkPerYear: 36, ShortFrac: 0.45,
				ParetoXm: 120, ParetoAlpha: 0.45, MaxDuration: 14 * dy,
			},
			DefaultProbes: 160,
		},
		{
			Name: "Verizon", ASN: 701, Country: "US", Kind: DHCP,
			Lease: 2 * h, ReclaimMean: 4 * dy,
			Outage: outage.Config{
				PowerPerYear: 16, NetworkPerYear: 26, ShortFrac: 0.45,
				ParetoXm: 120, ParetoAlpha: 0.45, MaxDuration: 14 * dy,
			},
			NumPrefixes: 5, PrefixBits: 16, CrossPrefixProb: 0.23,
			DefaultProbes: 90,
		},

		// ----- Remaining Table 5 periodic ISPs -----
		{
			Name: "Telefonica DE 2", ASN: 6805, Country: "DE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.88}, {Period: 0, Weight: 0.12}},
			SyncFrac: 0.5, SyncStartHour: 1, SyncEndHour: 7,
			SkipProb: 0.004, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.30,
			DefaultProbes: 17,
		},
		{
			Name: "Telefonica DE 1", ASN: 13184, Country: "DE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 1}},
			SyncFrac: 0.5, SyncStartHour: 1, SyncEndHour: 7,
			SkipProb: 0.005, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.30,
			DefaultProbes: 14,
		},
		{
			Name: "PJSC Rostelecom", ASN: 8997, Country: "RU", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.59}, {Period: 0, Weight: 0.41}},
			SkipProb: 0.005, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.75,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.45,
			DefaultProbes: 22,
		},
		{
			Name: "Proximus", ASN: 5432, Country: "BE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 36 * h, Weight: 0.30}, {Period: 24 * h, Weight: 0.10}, {Period: 0, Weight: 0.60}},
			SkipProb: 0.06, SameAddrProb: 0.01,
			OutageRenumberFrac: 0.70,
			NumPrefixes:        5, PrefixBits: 16, CrossPrefixProb: 0.49,
			DefaultProbes: 41,
		},
		{
			Name: "A1 Telekom", ASN: 8447, Country: "AT", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.92}, {Period: 0, Weight: 0.08}},
			SkipProb: 0.0009, SameAddrProb: 0.001,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.40,
			DefaultProbes: 12,
		},
		{
			Name: "Vodafone GmbH", ASN: 3209, Country: "DE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.43}, {Period: 0, Weight: 0.57}},
			SkipProb: 0.02, SameAddrProb: 0.005,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.35,
			DefaultProbes: 21,
		},
		{
			Name: "Hrvatski", ASN: 5391, Country: "HR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 1}},
			SkipProb: 0.003, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        3, PrefixBits: 17, CrossPrefixProb: 0.45,
			DefaultProbes: 7,
		},
		{
			Name: "ISKON", ASN: 13046, Country: "HR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 1}},
			SkipProb: 0.01, SameAddrProb: 0.002,
			OutageRenumberFrac: 1.0,
			NumPrefixes:        2, PrefixBits: 18, CrossPrefixProb: 0.50,
			DefaultProbes: 6,
		},
		{
			Name: "ANTEL", ASN: 6057, Country: "UY", Kind: PPP,
			Cohorts:  []Cohort{{Period: 12 * h, Weight: 1}},
			SkipProb: 0.001, SameAddrProb: 0.001,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        3, PrefixBits: 16, CrossPrefixProb: 0.50,
			DefaultProbes: 6,
		},
		{
			Name: "Global Village Telecom", ASN: 18881, Country: "BR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 48 * h, Weight: 1}},
			SkipProb: 0.02, SameAddrProb: 0.005, JitterProb: 0.12,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.55,
			DefaultProbes: 6,
		},
		{
			Name: "Mauritius Telecom", ASN: 23889, Country: "MU", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.83}, {Period: 0, Weight: 0.17}},
			SkipProb: 0.008, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        2, PrefixBits: 18, CrossPrefixProb: 0.45,
			DefaultProbes: 6,
		},
		{
			Name: "JSC Kazakhtelecom", ASN: 9198, Country: "KZ", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.33}, {Period: 0, Weight: 0.67}},
			SkipProb: 0.004, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.50,
			DefaultProbes: 15,
		},
		{
			Name: "Orange Polska", ASN: 5617, Country: "PL", Kind: PPP,
			Cohorts:  []Cohort{{Period: 22 * h, Weight: 0.5}, {Period: 24 * h, Weight: 0.4}, {Period: 0, Weight: 0.1}},
			SkipProb: 0.003, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.50,
			DefaultProbes: 10,
		},
		{
			Name: "VIPnet", ASN: 31012, Country: "HR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 92 * h, Weight: 0.57}, {Period: 0, Weight: 0.43}},
			SkipProb: 0.01, SameAddrProb: 0.004,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        2, PrefixBits: 17, CrossPrefixProb: 0.45,
			DefaultProbes: 7,
		},
		{
			Name: "Digi Tavkozlesi", ASN: 20845, Country: "HU", Kind: PPP,
			Cohorts:  []Cohort{{Period: 168 * h, Weight: 1}},
			SkipProb: 0.002, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        3, PrefixBits: 17, CrossPrefixProb: 0.45,
			DefaultProbes: 4,
		},
		{
			Name: "Free SAS", ASN: 12322, Country: "FR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.25}, {Period: 0, Weight: 0.75}},
			SkipProb: 0.01, SameAddrProb: 0.004,
			OutageRenumberFrac: 0.6,
			NumPrefixes:        4, PrefixBits: 15, CrossPrefixProb: 0.40,
			DefaultProbes: 12,
		},
		{
			Name: "SONATEL-AS", ASN: 8346, Country: "SN", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.43}, {Period: 0, Weight: 0.57}},
			SkipProb: 0.01, SameAddrProb: 0.004, JitterProb: 0.10,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        2, PrefixBits: 18, CrossPrefixProb: 0.50,
			DefaultProbes: 7,
		},
		{
			Name: "Net by Net", ASN: 12714, Country: "RU", Kind: PPP,
			Cohorts:  []Cohort{{Period: 47 * h, Weight: 0.43}, {Period: 0, Weight: 0.57}},
			SkipProb: 0.002, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        2, PrefixBits: 17, CrossPrefixProb: 0.45,
			DefaultProbes: 7,
		},

		// ----- Table 6/7 ISPs without strong periodicity -----
		{
			Name: "Telecom Italia", ASN: 3269, Country: "IT", Kind: PPP,
			Cohorts:            []Cohort{{Period: 0, Weight: 1}},
			SameAddrProb:       0.01,
			OutageRenumberFrac: 0.75,
			NumPrefixes:        8, PrefixBits: 15, CrossPrefixProb: 0.85,
			DefaultProbes: 28,
		},
		{
			Name: "Wind Telecomunicazioni", ASN: 1267, Country: "IT", Kind: PPP,
			Cohorts:            []Cohort{{Period: 0, Weight: 1}},
			SameAddrProb:       0.01,
			OutageRenumberFrac: 0.70,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.55,
			DefaultProbes: 12,
		},
		{
			Name: "SFR", ASN: 15557, Country: "FR", Kind: PPP,
			Cohorts:            []Cohort{{Period: 0, Weight: 1}},
			SameAddrProb:       0.02,
			OutageRenumberFrac: 0.45,
			NumPrefixes:        5, PrefixBits: 16, CrossPrefixProb: 0.45,
			DefaultProbes: 16,
		},
		{
			Name: "Comcast", ASN: 7922, Country: "US", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 5 * dy,
			Outage: outage.Config{
				PowerPerYear: 16, NetworkPerYear: 26, ShortFrac: 0.45,
				ParetoXm: 120, ParetoAlpha: 0.45, MaxDuration: 14 * dy,
			},
			NumPrefixes: 6, PrefixBits: 15, CrossPrefixProb: 0.37,
			DefaultProbes: 40,
		},
		{
			Name: "Ziggo", ASN: 9143, Country: "NL", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 5 * dy,
			NumPrefixes: 3, PrefixBits: 16, CrossPrefixProb: 0.35,
			DefaultProbes: 18,
		},
		{
			Name: "Virgin Media", ASN: 5089, Country: "GB", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 4 * dy,
			NumPrefixes: 5, PrefixBits: 16, CrossPrefixProb: 0.84,
			DefaultProbes: 15,
		},
		{
			Name: "Kabel Deutschland", ASN: 31334, Country: "DE", Kind: DHCP,
			Lease: 6 * h, ReclaimMean: 12 * dy,
			NumPrefixes: 4, PrefixBits: 16, CrossPrefixProb: 0.30,
			DefaultProbes: 16,
		},
		{
			Name: "Kabel BW", ASN: 29562, Country: "DE", Kind: DHCP,
			Lease: 6 * h, ReclaimMean: 12 * dy,
			NumPrefixes: 2, PrefixBits: 17, CrossPrefixProb: 0.30,
			DefaultProbes: 8,
		},

		// ----- Sibling-ASN operator: its customers' addresses hop
		// between two ASNs of the same organisation, feeding the paper's
		// 766 filtered multi-AS probes (§3.3). -----
		{
			Name: "PanEuro Duo", ASN: 200010, SiblingASN: 200011, Country: "CZ", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 1}},
			SkipProb: 0.005, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.9,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.60,
			DefaultProbes: 18,
		},

		// ----- Continental filler ISPs so Figure 1 has the paper's
		// per-continent contrast. -----
		{
			Name: "German Filler DSL", ASN: 200020, Country: "DE", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.7}, {Period: 0, Weight: 0.3}},
			SyncFrac: 0.4, SyncStartHour: 0, SyncEndHour: 6,
			SkipProb: 0.004, SameAddrProb: 0.002,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        3, PrefixBits: 16, CrossPrefixProb: 0.40,
			DefaultProbes: 20,
		},
		{
			Name: "Asia DSL 24h", ASN: 200030, Country: "JP", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.55}, {Period: 0, Weight: 0.45}},
			SkipProb: 0.01, SameAddrProb: 0.004,
			OutageRenumberFrac: 0.8,
			NumPrefixes:        4, PrefixBits: 16, CrossPrefixProb: 0.50,
			DefaultProbes: 25,
		},
		{
			Name: "Asia Cable", ASN: 200031, Country: "SG", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 4 * dy,
			NumPrefixes: 3, PrefixBits: 16, CrossPrefixProb: 0.40,
			DefaultProbes: 20,
		},
		{
			Name: "Africa DSL 24h", ASN: 200040, Country: "ZA", Kind: PPP,
			Cohorts:  []Cohort{{Period: 24 * h, Weight: 0.75}, {Period: 0, Weight: 0.25}},
			SkipProb: 0.008, SameAddrProb: 0.003,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        2, PrefixBits: 17, CrossPrefixProb: 0.50,
			DefaultProbes: 14,
		},
		{
			Name: "SA DSL 28h", ASN: 200050, Country: "AR", Kind: PPP,
			Cohorts:  []Cohort{{Period: 28 * h, Weight: 0.8}, {Period: 0, Weight: 0.2}},
			SkipProb: 0.006, SameAddrProb: 0.003,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        2, PrefixBits: 17, CrossPrefixProb: 0.50,
			DefaultProbes: 8,
		},
		{
			Name: "SA DSL 8d", ASN: 200051, Country: "CL", Kind: PPP,
			Cohorts:  []Cohort{{Period: 192 * h, Weight: 0.8}, {Period: 0, Weight: 0.2}},
			SkipProb: 0.004, SameAddrProb: 0.003,
			OutageRenumberFrac: 0.85,
			NumPrefixes:        2, PrefixBits: 17, CrossPrefixProb: 0.50,
			DefaultProbes: 6,
		},
		{
			Name: "NA Cable", ASN: 200060, Country: "CA", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 6 * dy,
			Outage: outage.Config{
				PowerPerYear: 16, NetworkPerYear: 26, ShortFrac: 0.45,
				ParetoXm: 120, ParetoAlpha: 0.45, MaxDuration: 14 * dy,
			},
			NumPrefixes: 3, PrefixBits: 16, CrossPrefixProb: 0.30,
			DefaultProbes: 30,
		},
		{
			Name: "Oceania Broadband", ASN: 200070, Country: "AU", Kind: DHCP,
			Lease: 4 * h, ReclaimMean: 6 * dy,
			NumPrefixes: 3, PrefixBits: 16, CrossPrefixProb: 0.35,
			DefaultProbes: 28,
		},

		// ----- Administrative renumbering: a stable DHCP ISP that
		// migrates its whole customer base to new prefixes on one day
		// mid-year — the single en-masse event the paper observed
		// (§2.3, §8). -----
		{
			Name: "MidBohemia Net", ASN: 200090, Country: "CZ", Kind: DHCP,
			Lease: 6 * h, ReclaimMean: 20 * dy,
			NumPrefixes: 4, PrefixBits: 16, CrossPrefixProb: 1.0,
			AdminRenumberDay: 142,
			DefaultProbes:    14,
		},

		// ----- Static-address ISPs: the never-changed population. -----
		{
			Name: "EU Static Hosting", ASN: 200080, Country: "NL", Kind: Static,
			NumPrefixes: 3, PrefixBits: 16,
			DefaultProbes: 60,
		},
		{
			Name: "US Static Business", ASN: 200081, Country: "US", Kind: Static,
			NumPrefixes: 2, PrefixBits: 16,
			DefaultProbes: 40,
		},
	}
	return ps
}

// ValidateAll validates every profile in the registry and checks that
// ASNs are unique; it exists so tests and world construction share one
// authoritative check.
func ValidateAll(profiles []Profile) error {
	seen := make(map[uint32]string)
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			return err
		}
		for _, asn := range []uint32{uint32(p.ASN), uint32(p.SiblingASN)} {
			if asn == 0 {
				continue
			}
			if prev, dup := seen[asn]; dup {
				return fmt.Errorf("isp: ASN %d used by both %q and %q", asn, prev, p.Name)
			}
			seen[asn] = p.Name
		}
	}
	return nil
}

// FindProfile returns the profile with the given name.
func FindProfile(profiles []Profile, name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
