package geo

import "testing"

func TestPaperCountriesPresent(t *testing.T) {
	// Every country named in the paper's Tables 5-7 must resolve.
	want := map[string]Continent{
		"FR": Europe,       // Orange, Free SAS, SFR
		"DE": Europe,       // DTAG, Telefonica, Vodafone, Kabel
		"GB": Europe,       // BT, Virgin Media
		"BE": Europe,       // Proximus
		"AT": Europe,       // A1 Telekom
		"HR": Europe,       // Hrvatski, ISKON, VIPnet
		"UY": SouthAmerica, // ANTEL
		"BR": SouthAmerica, // Global Village Telecom
		"MU": Africa,       // Mauritius Telecom
		"KZ": Asia,         // JSC Kazakhtelecom
		"PL": Europe,       // Orange Polska
		"HU": Europe,       // Digi Tavkozlesi
		"RU": Europe,       // Rostelecom, Net by Net
		"US": NorthAmerica, // Verizon, Comcast
		"NL": Europe,       // Ziggo
		"IT": Europe,       // Telecom Italia, Wind
		"SN": Africa,       // SONATEL
	}
	for code, cont := range want {
		got, err := ContinentOf(code)
		if err != nil {
			t.Errorf("ContinentOf(%q): %v", code, err)
			continue
		}
		if got != cont {
			t.Errorf("ContinentOf(%q) = %v, want %v", code, got, cont)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("XX"); err == nil {
		t.Error("Lookup(XX) should fail")
	}
	if _, err := ContinentOf(""); err == nil {
		t.Error("ContinentOf(empty) should fail")
	}
	if _, err := Lookup("de"); err == nil {
		t.Error("Lookup is case-sensitive; lowercase should fail")
	}
}

func TestAllContinentsPopulated(t *testing.T) {
	for _, cont := range Continents {
		if len(CodesIn(cont)) == 0 {
			t.Errorf("continent %v has no countries", cont)
		}
	}
}

func TestCodesSortedAndComplete(t *testing.T) {
	codes := Codes()
	if len(codes) != len(countries) {
		t.Errorf("Codes() returned %d entries, registry has %d", len(codes), len(countries))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1] >= codes[i] {
			t.Errorf("Codes() not strictly sorted at %d: %q >= %q", i, codes[i-1], codes[i])
		}
	}
}

func TestCodesInPartition(t *testing.T) {
	// Continents partition the registry: no overlap, union is everything.
	seen := map[string]Continent{}
	total := 0
	for _, cont := range Continents {
		for _, code := range CodesIn(cont) {
			if prev, dup := seen[code]; dup {
				t.Errorf("country %q in both %v and %v", code, prev, cont)
			}
			seen[code] = cont
			total++
		}
	}
	if total != len(countries) {
		t.Errorf("continent partition covers %d countries, registry has %d", total, len(countries))
	}
}

func TestContinentValid(t *testing.T) {
	if !Europe.Valid() {
		t.Error("EU must be valid")
	}
	if Continent("ZZ").Valid() {
		t.Error("ZZ must be invalid")
	}
	if Continent("").Valid() {
		t.Error("empty continent must be invalid")
	}
}

func TestEveryCountryContinentValid(t *testing.T) {
	for _, code := range Codes() {
		c, err := Lookup(code)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Continent.Valid() {
			t.Errorf("country %q has invalid continent %q", code, c.Continent)
		}
		if c.Name == "" {
			t.Errorf("country %q has empty name", code)
		}
	}
}
