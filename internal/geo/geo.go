// Package geo maps ISO 3166-1 alpha-2 country codes to continents.
//
// The paper's Figure 1 aggregates probe address durations by the
// continent of the probe's country; RIPE Atlas probe metadata carries
// the country code. This registry covers every country that appears in
// the paper's tables plus a spread sufficient for world-scale synthetic
// probe populations.
package geo

import (
	"fmt"
	"sort"
)

// Continent identifies one of the six populated continents using the
// two-letter codes the paper's Figure 1 legend uses.
type Continent string

// Continent codes as used in the paper's Figure 1 legend.
const (
	Europe       Continent = "EU"
	NorthAmerica Continent = "NA"
	Asia         Continent = "AS"
	Africa       Continent = "AF"
	SouthAmerica Continent = "SA"
	Oceania      Continent = "OC"
)

// Continents lists all continents in the paper's Figure 1 legend order.
var Continents = []Continent{Europe, NorthAmerica, Asia, Africa, SouthAmerica, Oceania}

// Country describes one country in the registry.
type Country struct {
	Code      string // ISO 3166-1 alpha-2, upper case
	Name      string
	Continent Continent
}

var countries = []Country{
	// Europe — the paper's probe population is Europe-heavy, and most of
	// the named periodic ISPs (Table 5) are European.
	{"AT", "Austria", Europe},
	{"BE", "Belgium", Europe},
	{"BG", "Bulgaria", Europe},
	{"CH", "Switzerland", Europe},
	{"CZ", "Czechia", Europe},
	{"DE", "Germany", Europe},
	{"DK", "Denmark", Europe},
	{"ES", "Spain", Europe},
	{"FI", "Finland", Europe},
	{"FR", "France", Europe},
	{"GB", "United Kingdom", Europe},
	{"GR", "Greece", Europe},
	{"HR", "Croatia", Europe},
	{"HU", "Hungary", Europe},
	{"IE", "Ireland", Europe},
	{"IT", "Italy", Europe},
	{"NL", "Netherlands", Europe},
	{"NO", "Norway", Europe},
	{"PL", "Poland", Europe},
	{"PT", "Portugal", Europe},
	{"RO", "Romania", Europe},
	{"RS", "Serbia", Europe},
	{"RU", "Russia", Europe},
	{"SE", "Sweden", Europe},
	{"SI", "Slovenia", Europe},
	{"SK", "Slovakia", Europe},
	{"UA", "Ukraine", Europe},

	// North America.
	{"CA", "Canada", NorthAmerica},
	{"CR", "Costa Rica", NorthAmerica},
	{"MX", "Mexico", NorthAmerica},
	{"PA", "Panama", NorthAmerica},
	{"US", "United States", NorthAmerica},

	// Asia. Kazakhstan appears in Table 5 (JSC Kazakhtelecom).
	{"CN", "China", Asia},
	{"HK", "Hong Kong", Asia},
	{"ID", "Indonesia", Asia},
	{"IL", "Israel", Asia},
	{"IN", "India", Asia},
	{"IR", "Iran", Asia},
	{"JP", "Japan", Asia},
	{"KR", "South Korea", Asia},
	{"KZ", "Kazakhstan", Asia},
	{"MY", "Malaysia", Asia},
	{"PH", "Philippines", Asia},
	{"SG", "Singapore", Asia},
	{"TH", "Thailand", Asia},
	{"TR", "Turkey", Asia},
	{"TW", "Taiwan", Asia},
	{"VN", "Vietnam", Asia},

	// Africa. Mauritius and Senegal appear in Table 5.
	{"DZ", "Algeria", Africa},
	{"EG", "Egypt", Africa},
	{"KE", "Kenya", Africa},
	{"MA", "Morocco", Africa},
	{"MU", "Mauritius", Africa},
	{"NG", "Nigeria", Africa},
	{"SN", "Senegal", Africa},
	{"TN", "Tunisia", Africa},
	{"ZA", "South Africa", Africa},

	// South America. Uruguay (ANTEL) and Brazil (GVT) appear in Table 5.
	{"AR", "Argentina", SouthAmerica},
	{"BR", "Brazil", SouthAmerica},
	{"CL", "Chile", SouthAmerica},
	{"CO", "Colombia", SouthAmerica},
	{"EC", "Ecuador", SouthAmerica},
	{"PE", "Peru", SouthAmerica},
	{"UY", "Uruguay", SouthAmerica},
	{"VE", "Venezuela", SouthAmerica},

	// Oceania.
	{"AU", "Australia", Oceania},
	{"FJ", "Fiji", Oceania},
	{"NC", "New Caledonia", Oceania},
	{"NZ", "New Zealand", Oceania},
}

var byCode = func() map[string]Country {
	m := make(map[string]Country, len(countries))
	for _, c := range countries {
		if _, dup := m[c.Code]; dup {
			panic("geo: duplicate country code " + c.Code)
		}
		m[c.Code] = c
	}
	return m
}()

// Lookup returns the registry entry for an ISO country code.
func Lookup(code string) (Country, error) {
	c, ok := byCode[code]
	if !ok {
		return Country{}, fmt.Errorf("geo: unknown country code %q", code)
	}
	return c, nil
}

// ContinentOf returns the continent for a country code, or an error if
// the code is unknown. Analyses treat unknown codes as filterable rather
// than fatal, matching the paper's handling of incomplete metadata.
func ContinentOf(code string) (Continent, error) {
	c, err := Lookup(code)
	if err != nil {
		return "", err
	}
	return c.Continent, nil
}

// Codes returns all registered country codes in sorted order.
func Codes() []string {
	out := make([]string, 0, len(byCode))
	for code := range byCode {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// CodesIn returns the registered country codes on the given continent,
// sorted.
func CodesIn(cont Continent) []string {
	var out []string
	for _, c := range countries {
		if c.Continent == cont {
			out = append(out, c.Code)
		}
	}
	sort.Strings(out)
	return out
}

// Valid reports whether cont is one of the six registered continents.
func (c Continent) Valid() bool {
	for _, k := range Continents {
		if c == k {
			return true
		}
	}
	return false
}
