package cluster

import (
	"reflect"
	"testing"
)

func TestRingValidation(t *testing.T) {
	if _, err := NewRing([]string{"a"}, 0); err == nil {
		t.Error("zero partitions accepted")
	}
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 8); err == nil {
		t.Error("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 8); err == nil {
		t.Error("duplicate node ID accepted")
	}
}

// TestRingDeterminism: the assignment is a pure function of the node
// set (order-independent) and the partition count.
func TestRingDeterminism(t *testing.T) {
	r1, err := NewRing([]string{"a", "b", "c"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Assignments(), r2.Assignments()) {
		t.Error("assignment depends on node order")
	}
}

// TestRingCoverage: every partition has exactly one owner, and the
// per-node partition lists tile the space.
func TestRingCoverage(t *testing.T) {
	const total = 97
	r, err := NewRing([]string{"peer-1", "peer-2", "peer-3", "peer-4"}, total)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, total)
	for _, n := range r.Nodes() {
		for _, p := range r.Partitions(n) {
			if covered[p] {
				t.Fatalf("partition %d covered twice", p)
			}
			covered[p] = true
			if r.Owner(p) != n {
				t.Fatalf("Partitions(%s) includes %d but Owner(%d)=%s", n, p, p, r.Owner(p))
			}
		}
	}
	for p, ok := range covered {
		if !ok {
			t.Fatalf("partition %d unowned", p)
		}
	}
}

// TestRingBalance: rendezvous scores are uniform enough that no node
// ends up starved or hot. Loose bounds — this is a sanity check on the
// hash, not a statistics exam.
func TestRingBalance(t *testing.T) {
	const total, nodes = 256, 4
	r, err := NewRing([]string{"n0", "n1", "n2", "n3"}, total)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range r.Nodes() {
		got := len(r.Partitions(n))
		if got < total/nodes/3 || got > total*3/nodes {
			t.Errorf("node %s owns %d of %d partitions, outside [%d, %d]",
				n, got, total, total/nodes/3, total*3/nodes)
		}
	}
}

// TestRingMinimalMovement is the property rendezvous hashing is chosen
// for: adding a node only moves partitions TO it, removing a node only
// moves partitions FROM it; nothing shuffles between survivors.
func TestRingMinimalMovement(t *testing.T) {
	const total = 128
	base, err := NewRing([]string{"a", "b", "c"}, total)
	if err != nil {
		t.Fatal(err)
	}

	grown, err := NewRing([]string{"a", "b", "c", "d"}, total)
	if err != nil {
		t.Fatal(err)
	}
	moves, err := base.Moves(grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Error("adding a node moved nothing (suspicious for 128 partitions)")
	}
	for _, mv := range moves {
		if mv.To != "d" {
			t.Errorf("adding d moved partition %d %s→%s (only moves TO the new node are minimal)",
				mv.Partition, mv.From, mv.To)
		}
	}

	shrunk, err := NewRing([]string{"a", "b"}, total)
	if err != nil {
		t.Fatal(err)
	}
	moves, err = base.Moves(shrunk)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range moves {
		if mv.From != "c" {
			t.Errorf("removing c moved partition %d %s→%s (only moves FROM the removed node are minimal)",
				mv.Partition, mv.From, mv.To)
		}
	}

	if _, err := base.Moves(mustRing(t, []string{"a"}, 64)); err == nil {
		t.Error("Moves across differing partition counts accepted")
	}
}

func mustRing(t *testing.T, nodes []string, total int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, total)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
