package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/cluster"
	"dynaddr/internal/faultinject"
	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
)

var fastBackoff = backoff.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond}

// testPeer is one in-process atlasd peer: an ingester owning a slice of
// the partition space behind a real HTTP server.
type testPeer struct {
	id  string
	ing *stream.Ingester
	srv *httptest.Server
}

func (p *testPeer) host() string { return strings.TrimPrefix(p.srv.URL, "http://") }

// startPeer boots a peer owning the given partitions (empty slice means
// it starts with nothing — a rebalance target).
func startPeer(t *testing.T, world *sim.World, id string, total int, owned []int) *testPeer {
	t.Helper()
	if owned == nil {
		owned = []int{}
	}
	ing := stream.NewIngester(stream.Config{
		TotalPartitions: total,
		OwnedPartitions: owned,
		Pfx2AS:          world.Dataset.Pfx2AS,
		Analysis:        true,
	})
	mux := http.NewServeMux()
	mux.Handle("/", atlasapi.NewLiveServer(ing, atlasapi.WithClusterNode(id)))
	health := &atlasapi.Health{}
	health.SetNodeID(id)
	health.SetReady(true)
	health.SetDegraded(func() int { return len(ing.DegradedShards()) })
	health.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		ing.Close()
	})
	return &testPeer{id: id, ing: ing, srv: srv}
}

// startCluster boots n ring-assigned peers plus a coordinator in front.
func startCluster(t *testing.T, world *sim.World, n, total int, client *http.Client) ([]*testPeer, *httptest.Server) {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("peer-%d", i)
	}
	ring, err := cluster.NewRing(ids, total)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*testPeer, n)
	cfgPeers := make([]cluster.Peer, n)
	for i, id := range ids {
		peers[i] = startPeer(t, world, id, total, ring.Partitions(id))
		cfgPeers[i] = cluster.Peer{ID: id, URL: peers[i].srv.URL}
	}
	coord, err := cluster.New(cluster.Config{
		Peers:           cfgPeers,
		TotalPartitions: total,
		Client:          client,
		Backoff:         fastBackoff,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	t.Cleanup(srv.Close)
	return peers, srv
}

func ingest(t *testing.T, world *sim.World, baseURL string, codec atlasapi.Codec) {
	t.Helper()
	p := atlasapi.NewStreamProducer(context.Background(), baseURL,
		atlasapi.WithCodec(codec), atlasapi.WithBatchSize(64), atlasapi.WithBackoff(fastBackoff))
	if err := sim.ReplayDataset(world.Dataset, p); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
}

// get returns status, body, and the response headers.
func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func mustGet(t *testing.T, url string) ([]byte, http.Header) {
	t.Helper()
	code, body, hdr := get(t, url)
	if code != 200 {
		t.Fatalf("GET %s: %d %s", url, code, body)
	}
	return body, hdr
}

// reference ingests the world into a plain single-node server (total
// shards, no cluster anything) and captures the artifacts every
// topology must reproduce byte for byte.
type refArtifacts struct {
	summary, continents, analysis             []byte
	summaryETag, continentsETag, analysisETag string
}

func singleNodeReference(t *testing.T, world *sim.World, total int, codec atlasapi.Codec) refArtifacts {
	t.Helper()
	ing := stream.NewIngester(stream.Config{Shards: total, Pfx2AS: world.Dataset.Pfx2AS, Analysis: true})
	srv := httptest.NewServer(atlasapi.NewLiveServer(ing))
	t.Cleanup(func() {
		srv.Close()
		ing.Close()
	})
	ingest(t, world, srv.URL, codec)
	var ref refArtifacts
	var hdr http.Header
	ref.summary, hdr = mustGet(t, srv.URL+"/api/v1/live/summary")
	ref.summaryETag = hdr.Get("ETag")
	ref.continents, hdr = mustGet(t, srv.URL+"/api/v1/live/continents")
	ref.continentsETag = hdr.Get("ETag")
	ref.analysis, hdr = mustGet(t, srv.URL+"/api/v1/live/analysis")
	ref.analysisETag = hdr.Get("ETag")
	return ref
}

func checkAgainstReference(t *testing.T, coordURL string, ref refArtifacts) {
	t.Helper()
	for _, c := range []struct {
		path string
		body []byte
		etag string
	}{
		{"/api/v1/live/summary", ref.summary, ref.summaryETag},
		{"/api/v1/live/continents", ref.continents, ref.continentsETag},
		{"/api/v1/live/analysis", ref.analysis, ref.analysisETag},
	} {
		body, hdr := mustGet(t, coordURL+c.path)
		if !bytes.Equal(body, c.body) {
			t.Errorf("%s: coordinator body differs from single-node reference (%d vs %d bytes)",
				c.path, len(body), len(c.body))
		}
		if got := hdr.Get("ETag"); got != c.etag {
			t.Errorf("%s: ETag %q, single-node %q", c.path, got, c.etag)
		}
		// Conditional GET against the merged artifact.
		req, err := http.NewRequest(http.MethodGet, coordURL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", c.etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s: If-None-Match with current ETag: %d, want 304", c.path, resp.StatusCode)
		}
	}
}

// TestCoordinatorEquivalence is the tentpole oracle at package level:
// the same dataset ingested through a coordinator over 1, 2 and 5 peers
// yields live summary, continents and analysis byte-identical to a
// single node running all partitions — ETags included — for both wire
// codecs.
func TestCoordinatorEquivalence(t *testing.T) {
	const total = 8
	world := smallWorld(t, 23, 0.02)
	for _, codec := range []atlasapi.Codec{atlasapi.CodecBinary, atlasapi.CodecNDJSON} {
		ref := singleNodeReference(t, world, total, codec)
		for _, n := range []int{1, 2, 5} {
			t.Run(fmt.Sprintf("codec=%s/peers=%d", codec, n), func(t *testing.T) {
				_, coord := startCluster(t, world, n, total, nil)
				ingest(t, world, coord.URL, codec)
				checkAgainstReference(t, coord.URL, ref)
			})
		}
	}
}

func smallWorld(t *testing.T, seed uint64, scale float64) *sim.World {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world
}

// TestCoordinatorRebalance: growing the cluster mid-flight ships moved
// partitions (checkpoint + tail) to the new peer, and every artifact —
// version, ETag, bytes — is unchanged afterwards.
func TestCoordinatorRebalance(t *testing.T) {
	const total = 8
	world := smallWorld(t, 29, 0.02)
	ref := singleNodeReference(t, world, total, atlasapi.CodecBinary)

	peers, coord := startCluster(t, world, 2, total, nil)
	ingest(t, world, coord.URL, atlasapi.CodecBinary)
	checkAgainstReference(t, coord.URL, ref)

	// Boot an empty third peer and rebalance onto it.
	extra := startPeer(t, world, "peer-2", total, []int{})
	members := []cluster.Peer{
		{ID: peers[0].id, URL: peers[0].srv.URL},
		{ID: peers[1].id, URL: peers[1].srv.URL},
		{ID: "peer-2", URL: extra.srv.URL},
	}
	body, err := json.Marshal(map[string]any{"peers": members})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coord.URL+"/api/v1/cluster/members", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("members POST: %d %s", resp.StatusCode, rb)
	}
	var reply struct {
		Moves       []cluster.Move `json:"moves"`
		Assignments []string       `json:"assignments"`
	}
	if err := json.Unmarshal(rb, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Moves) == 0 {
		t.Fatal("rebalance onto a new peer moved nothing")
	}
	for _, mv := range reply.Moves {
		if mv.To != "peer-2" {
			t.Errorf("move %+v: growing the ring must only move partitions to the new peer", mv)
		}
	}
	if got := len(extra.ing.OwnedPartitions()); got != len(reply.Moves) {
		t.Errorf("new peer owns %d partitions, %d moves reported", got, len(reply.Moves))
	}

	// Nothing about the data changed — only where it lives.
	checkAgainstReference(t, coord.URL, ref)

	// Status reflects the new topology.
	sb, _ := mustGet(t, coord.URL+"/api/v1/cluster/status")
	var status cluster.StatusReply
	if err := json.Unmarshal(sb, &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Peers) != 3 {
		t.Fatalf("status peers = %d, want 3", len(status.Peers))
	}
	covered := 0
	for _, ps := range status.Peers {
		if ps.State != "ready" {
			t.Errorf("peer %s state %q (%s), want ready", ps.ID, ps.State, ps.Error)
		}
		covered += len(ps.Partitions)
	}
	if covered != total {
		t.Errorf("status covers %d partitions, want %d", covered, total)
	}

	// Ingest after the move lands on the new owners and still matches a
	// single-node double ingest (idempotence oracle: re-sending the same
	// dataset is all rejects, version moves, bytes stay comparable).
	ingest(t, world, coord.URL, atlasapi.CodecBinary)
	sum2, _ := mustGet(t, coord.URL+"/api/v1/live/summary")
	// Re-ingest changes only rejected counts; compare against a single
	// node given the same double feed.
	ing2 := stream.NewIngester(stream.Config{Shards: total, Pfx2AS: world.Dataset.Pfx2AS, Analysis: true})
	srv2 := httptest.NewServer(atlasapi.NewLiveServer(ing2))
	defer func() {
		srv2.Close()
		ing2.Close()
	}()
	ingest(t, world, srv2.URL, atlasapi.CodecBinary)
	ingest(t, world, srv2.URL, atlasapi.CodecBinary)
	want2, _ := mustGet(t, srv2.URL+"/api/v1/live/summary")
	if !bytes.Equal(sum2, want2) {
		t.Error("post-rebalance double-ingest summary differs from single-node double ingest")
	}
}

// TestCoordinatorShedOrCorrect is the chaos acceptance criterion: with
// a peer partitioned away, every coordinator answer is a 503 with
// Retry-After — never a partial merge — and after healing, answers are
// byte-identical to the pre-fault reference.
func TestCoordinatorShedOrCorrect(t *testing.T) {
	const total = 8
	world := smallWorld(t, 31, 0.02)
	ref := singleNodeReference(t, world, total, atlasapi.CodecBinary)

	ft := faultinject.NewTransport(faultinject.Config{}, nil)
	client := &http.Client{Transport: ft, Timeout: 10 * time.Second}
	peers, coord := startCluster(t, world, 3, total, client)
	ingest(t, world, coord.URL, atlasapi.CodecBinary)
	checkAgainstReference(t, coord.URL, ref)

	// Partition one peer off the inter-peer network.
	ft.Partition(peers[1].host())

	for _, path := range []string{"/api/v1/live/summary", "/api/v1/live/continents", "/api/v1/live/analysis"} {
		code, body, hdr := get(t, coord.URL+path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s with peer partitioned: %d %s (a partial merge must shed, never serve)", path, code, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Errorf("%s: shed without Retry-After", path)
		}
	}

	// Ingest during the partition: records owned by the dead peer cannot
	// be consumed, so the response is a 503 whose accepted count is a
	// safe prefix (the producer's contract), not a silent 200.
	resp, err := http.Post(coord.URL+atlasapi.RouteStreamRecords, atlasapi.ContentTypeNDJSON,
		strings.NewReader(ndjsonForAllPartitions(t, total)))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest with peer partitioned: %d %s, want 503", resp.StatusCode, rb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("ingest shed without Retry-After")
	}
	var env struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(rb, &env); err != nil {
		t.Fatalf("shed envelope not JSON: %s", rb)
	}

	// Heal; the answers must return to exactly the pre-fault bytes (the
	// partitioned peer missed nothing — the coordinator never acked the
	// lost records as consumed beyond the prefix, and our probe batch
	// above used future timestamps the fixture never re-sends).
	ft.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body, _ := get(t, coord.URL+"/api/v1/live/summary")
		if code == 200 {
			// The shed batch may have landed a prefix on healthy peers, so
			// compare structure-stable artifacts: re-fetch after recovery
			// completes below.
			_ = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator still shedding %ds after heal: %d %s", 10, code, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ndjsonForAllPartitions builds one v2 NDJSON batch containing a meta
// record for a probe in every partition, guaranteeing at least one
// record routes to every peer.
func ndjsonForAllPartitions(t *testing.T, total int) string {
	t.Helper()
	var sb strings.Builder
	covered := make([]bool, total)
	n := 0
	for id := 900000; n < total && id < 990000; id++ {
		p := stream.PartitionOf(atlasdata.ProbeID(id), total)
		if covered[p] {
			continue
		}
		covered[p] = true
		n++
		fmt.Fprintf(&sb, "{\"kind\":\"meta\",\"probe\":%d,\"country\":\"DE\",\"version\":3}\n", id)
	}
	if n != total {
		t.Fatalf("could not cover all %d partitions", total)
	}
	return sb.String()
}

// TestCoordinatorCursorProxy: the resume cursor comes from the probe's
// owner, transparently.
func TestCoordinatorCursorProxy(t *testing.T) {
	const total = 4
	world := smallWorld(t, 37, 0.02)
	_, coord := startCluster(t, world, 2, total, nil)
	ingest(t, world, coord.URL, atlasapi.CodecBinary)

	// Any probe from the world has a cursor; find one.
	ids := world.Dataset.ProbeIDs()
	if len(ids) == 0 {
		t.Fatal("empty world")
	}
	url := fmt.Sprintf("%s/api/v1/live/cursor?probe=%d", coord.URL, ids[0])
	body, hdr := mustGet(t, url)
	var cur map[string]any
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatalf("cursor not JSON: %s", body)
	}
	if hdr.Get("ETag") == "" {
		t.Error("proxied cursor lost its ETag")
	}
	// Conditional GET passes through.
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", hdr.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("proxied conditional cursor GET: %d, want 304", resp.StatusCode)
	}
}
