package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/serve"
	"dynaddr/internal/stream"
	"dynaddr/internal/wire"
)

// Peer names one atlasd peer: its cluster node ID and base URL
// ("http://host:port").
type Peer struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Config parameterises a Coordinator.
type Config struct {
	// Peers is the initial membership. IDs must be unique and non-empty;
	// URLs must be absolute.
	Peers []Peer
	// TotalPartitions is the cluster-wide partition count. Every peer
	// must run with the same value (-partitions-total).
	TotalPartitions int
	// Client issues the inter-peer requests; nil means a client with a
	// 30-second timeout. Wrap its Transport in faultinject.Transport to
	// chaos-test inter-peer behaviour.
	Client *http.Client
	// Retries is how many times a failed per-peer forward is retried
	// before the batch fails; zero means 2.
	Retries int
	// Backoff spaces forward retries (Retry-After hints win, capped at
	// the policy max); the zero value is the package default.
	Backoff backoff.Policy
	// RetryAfter is the pacing hint shed responses carry; zero means 1s.
	RetryAfter time.Duration
	// MaxBatchBytes bounds an ingest batch body; zero means the API
	// default (16 MiB).
	MaxBatchBytes int64
	// Logf receives operational logging; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Coordinator is the cluster front door, an http.Handler serving the
// same API surface a single-node atlasd does:
//
//	POST /api/v2/stream/records   split by probe owner, forwarded per peer
//	GET  /api/v1/live/summary     scatter-gather merge over all peers
//	GET  /api/v1/live/continents  scatter-gather merge
//	GET  /api/v1/live/analysis    scatter-gather merge + query-time Compute
//	GET  /api/v1/live/as/{asn}    scatter-gather merge, one AS
//	GET  /api/v1/live/cursor      proxied to the probe's owner peer
//	GET  /api/v1/cluster/status   one row per peer (ownership, version, state)
//	POST /api/v1/cluster/members  rebalance to a new peer set
//
// Queries shed with 503 + Retry-After whenever a complete, exactly-
// once-covered merge is impossible — a peer unreachable, partition
// coverage inconsistent, or a rebalance in flight. A partial merge is
// never served: the merged artifact is either byte-identical to the
// single-node fold over every partition, or absent.
type Coordinator struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	logf   func(format string, args ...any)
	jitter backoff.Jitter

	mu        sync.RWMutex
	peers     map[string]*peerConn // by node ID
	order     []string             // sorted node IDs, forward determinism
	assign    []string             // partition → node ID
	balancing bool
}

// peerConn is a peer plus its breaker: consecutive forward/fan-out
// failures open the breaker and fail calls fast until the cooldown.
type peerConn struct {
	peer    Peer
	breaker backoff.Breaker
}

// New builds a Coordinator over the initial membership.
func New(cfg Config) (*Coordinator, error) {
	if cfg.TotalPartitions <= 0 {
		return nil, fmt.Errorf("cluster: coordinator needs a positive partition count")
	}
	ids := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.URL == "" {
			return nil, fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
		ids = append(ids, p.ID)
	}
	ring, err := NewRing(ids, cfg.TotalPartitions)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		client: cfg.Client,
		mux:    http.NewServeMux(),
		logf:   cfg.Logf,
		peers:  make(map[string]*peerConn, len(cfg.Peers)),
		assign: ring.Assignments(),
	}
	if c.client == nil {
		c.client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.logf == nil {
		c.logf = log.Printf
	}
	for _, p := range cfg.Peers {
		c.peers[p.ID] = &peerConn{peer: p}
	}
	c.order = ring.Nodes()
	c.mux.HandleFunc(atlasapi.RouteStreamRecords, c.postRecords)
	c.mux.HandleFunc("/api/v1/live/summary", c.summary)
	c.mux.HandleFunc("/api/v1/live/continents", c.continents)
	c.mux.HandleFunc("/api/v1/live/analysis", c.analysis)
	c.mux.HandleFunc("/api/v1/live/as/", c.asDetail)
	c.mux.HandleFunc("/api/v1/live/cursor", c.cursor)
	c.mux.HandleFunc("/api/v1/cluster/status", c.status)
	c.mux.HandleFunc("/api/v1/cluster/members", c.members)
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

func (c *Coordinator) retryAfter() time.Duration {
	if c.cfg.RetryAfter > 0 {
		return c.cfg.RetryAfter
	}
	return atlasapi.DefaultRetryAfter
}

func (c *Coordinator) maxBatch() int64 {
	if c.cfg.MaxBatchBytes > 0 {
		return c.cfg.MaxBatchBytes
	}
	return atlasapi.DefaultMaxBatchBytes
}

// envelope mirrors the peer API's JSON error shape, so a client cannot
// tell a coordinator's refusal from a single node's.
type envelope struct {
	Error    string `json:"error"`
	Status   int    `json:"status"`
	Accepted int    `json:"accepted,omitempty"`
}

func apiError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(envelope{Error: msg, Status: code}) //nolint:errcheck // headers are gone
}

// shed answers 503 + Retry-After: the cluster cannot produce a complete
// answer right now, come back.
func (c *Coordinator) shed(w http.ResponseWriter, msg string, accepted int) {
	secs := int64((c.retryAfter() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(envelope{Error: msg, Status: http.StatusServiceUnavailable, Accepted: accepted}) //nolint:errcheck // headers are gone
}

// snapshotPeers captures the current membership for one operation.
// Fan-outs refuse to run mid-rebalance: partition ownership is in
// motion and a merge could double- or under-count a moving partition.
func (c *Coordinator) snapshotPeers() ([]*peerConn, []string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.balancing {
		return nil, nil, errors.New("rebalance in progress")
	}
	out := make([]*peerConn, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.peers[id])
	}
	return out, append([]string(nil), c.assign...), nil
}

// ---- ingest: split by owner, forward per peer ----

// postRecords splits a v2 batch by partition owner using the zero-copy
// frame iterator (binary) or line scanner (NDJSON) and forwards each
// peer's sub-batch over the same v2 endpoint, breaker-guarded and
// retried with Retry-After pacing. The response preserves the v2
// partial-accept contract: "accepted" is the length of the batch
// PREFIX that is durably consumed, so an at-least-once producer can
// trim and re-send the rest; records of that prefix owned by peers
// that succeeded are never re-sent, and a re-sent suffix record that
// did land earlier is rejected by per-probe time order on its owner.
func (c *Coordinator) postRecords(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST records")
		return
	}
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		apiError(w, http.StatusUnsupportedMediaType, "bad Content-Type: "+err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.maxBatch()))
	if err != nil {
		apiError(w, http.StatusRequestEntityTooLarge, err.Error())
		return
	}
	peers, assign, err := c.snapshotPeers()
	if err != nil {
		c.shed(w, err.Error(), 0)
		return
	}
	byID := make(map[string]*peerConn, len(peers))
	for _, pc := range peers {
		byID[pc.peer.ID] = pc
	}

	var split map[string]*subBatch
	var order []int // frame index → owner position, for prefix accounting
	var owners []string
	switch ct {
	case atlasapi.ContentTypeBinary:
		split, owners, order, err = splitBinary(body, assign)
	case atlasapi.ContentTypeNDJSON, "application/json":
		split, owners, order, err = splitNDJSON(body, assign)
	default:
		apiError(w, http.StatusUnsupportedMediaType,
			fmt.Sprintf("unsupported Content-Type %q (want %s or %s)", ct, atlasapi.ContentTypeBinary, atlasapi.ContentTypeNDJSON))
		return
	}
	if err != nil {
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Forward sub-batches in sorted owner order (deterministic, and the
	// per-probe record order inside each sub-batch is the batch order).
	consumed := make(map[string]int, len(split))
	failed := map[string]string{}
	quarantined := 0
	for _, id := range owners {
		sb := split[id]
		pc := byID[id]
		if pc == nil {
			failed[id] = fmt.Sprintf("partition owner %q not in membership", id)
			continue
		}
		n, q, ferr := c.forward(r.Context(), pc, ct, sb.buf.Bytes(), sb.records)
		consumed[id] = n
		quarantined += q
		if ferr != nil {
			failed[id] = ferr.Error()
		}
	}

	// The consumed prefix: walk the batch in order, stop at the first
	// record its owner did not consume.
	prefix := 0
	seen := make(map[string]int, len(split))
	for _, idx := range order {
		id := owners[idx]
		if seen[id] >= consumed[id] {
			break
		}
		seen[id]++
		prefix++
	}

	if len(failed) > 0 {
		parts := make([]string, 0, len(failed))
		for id, msg := range failed {
			parts = append(parts, id+": "+msg)
		}
		sort.Strings(parts)
		c.shed(w, "forwarding failed ("+strings.Join(parts, "; ")+")", prefix)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if quarantined > 0 {
		fmt.Fprintf(w, "{\"accepted\": %d, \"quarantined\": %d}\n", prefix, quarantined)
		return
	}
	fmt.Fprintf(w, "{\"accepted\": %d}\n", prefix)
}

// subBatch is one peer's slice of an ingest batch.
type subBatch struct {
	buf     bytes.Buffer
	records int
}

// splitBinary partitions a framed binary batch by probe owner. Frames
// are copied verbatim (header + checksum included) into per-owner
// buffers; only the 5-byte kind+probe prefix of each payload is read.
// Returns the owner list in sorted order and, per original frame, the
// index into that list.
func splitBinary(body []byte, assign []string) (map[string]*subBatch, []string, []int, error) {
	split := map[string]*subBatch{}
	var ownerOf []string
	it := wire.Frames(body)
	for {
		payload, done, err := it.Next()
		if done {
			break
		}
		if err != nil {
			return nil, nil, nil, fmt.Errorf("frame %d: %v", len(ownerOf), err)
		}
		probe, err := wire.PayloadProbe(payload)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("frame %d: %v", len(ownerOf), err)
		}
		owner := assign[stream.PartitionOf(probe, len(assign))]
		sb := split[owner]
		if sb == nil {
			sb = &subBatch{}
			split[owner] = sb
		}
		b := sb.buf.AvailableBuffer()
		sb.buf.Write(wire.AppendFrame(b, payload))
		sb.records++
		ownerOf = append(ownerOf, owner)
	}
	return finishSplit(split, ownerOf)
}

// splitNDJSON partitions an NDJSON batch by probe owner, reading only
// the "probe" field of each line.
func splitNDJSON(body []byte, assign []string) (map[string]*subBatch, []string, []int, error) {
	split := map[string]*subBatch{}
	var ownerOf []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var probe struct {
			Probe atlasdata.ProbeID `json:"probe"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		if probe.Probe <= 0 {
			return nil, nil, nil, fmt.Errorf("line %d: missing or bad probe id", line)
		}
		owner := assign[stream.PartitionOf(probe.Probe, len(assign))]
		sb := split[owner]
		if sb == nil {
			sb = &subBatch{}
			split[owner] = sb
		}
		sb.buf.Write(raw)
		sb.buf.WriteByte('\n')
		sb.records++
		ownerOf = append(ownerOf, owner)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	return finishSplit(split, ownerOf)
}

// finishSplit computes the sorted owner list and the per-record owner
// index used for prefix accounting.
func finishSplit(split map[string]*subBatch, ownerOf []string) (map[string]*subBatch, []string, []int, error) {
	owners := make([]string, 0, len(split))
	for id := range split {
		owners = append(owners, id)
	}
	sort.Strings(owners)
	pos := make(map[string]int, len(owners))
	for i, id := range owners {
		pos[id] = i
	}
	order := make([]int, len(ownerOf))
	for i, id := range ownerOf {
		order[i] = pos[id]
	}
	return split, owners, order, nil
}

// forward delivers one sub-batch to a peer, breaker-guarded, honouring
// Retry-After pacing and retrying transient failures. Returns how many
// records the peer consumed (routed or quarantined) and the quarantine
// count on success.
func (c *Coordinator) forward(ctx context.Context, pc *peerConn, ct string, body []byte, records int) (consumed, quarantined int, err error) {
	retries := c.cfg.Retries
	if retries <= 0 {
		retries = 2
	}
	var retryHint time.Duration
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if wait := pc.breaker.Wait(time.Now()); wait > 0 {
			return 0, 0, fmt.Errorf("breaker open for %s (cooling down %s): %v", pc.peer.ID, wait.Round(time.Millisecond), lastErr)
		}
		if attempt > 0 {
			d := retryHint
			if d <= 0 {
				d = c.cfg.Backoff.Delay(attempt-1, c.jitterWord())
			} else if max := c.cfg.Backoff.MaxDelay(); d > max {
				d = max
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return 0, 0, ctx.Err()
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, pc.peer.URL+atlasapi.RouteStreamRecords, bytes.NewReader(body))
		if rerr != nil {
			return 0, 0, rerr
		}
		req.Header.Set("Content-Type", ct)
		resp, rerr := c.client.Do(req)
		if rerr != nil {
			pc.breaker.Fail(time.Now())
			lastErr = rerr
			retryHint = 0
			continue
		}
		rb, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr != nil {
			pc.breaker.Fail(time.Now())
			lastErr = rerr
			retryHint = 0
			continue
		}
		if resp.StatusCode == http.StatusOK {
			pc.breaker.OK()
			var acc struct {
				Accepted    int `json:"accepted"`
				Quarantined int `json:"quarantined"`
			}
			if jerr := json.Unmarshal(rb, &acc); jerr != nil {
				return 0, 0, fmt.Errorf("peer %s: bad accept envelope: %v", pc.peer.ID, jerr)
			}
			if acc.Accepted > records {
				acc.Accepted = records
			}
			return acc.Accepted, acc.Quarantined, nil
		}
		// Partial accept: the peer consumed a prefix before failing.
		var env envelope
		if json.Unmarshal(rb, &env) == nil && env.Accepted > 0 {
			if env.Accepted > records {
				env.Accepted = records
			}
			consumed = env.Accepted
			// The consumed prefix is gone from our buffer's concern only if
			// we also trim; re-sending it is safe (per-probe time order
			// rejects duplicates) so keep the retry simple: resend whole.
		}
		lastErr = fmt.Errorf("peer %s: %s: %s", pc.peer.ID, resp.Status, strings.TrimSpace(string(rb)))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			pc.breaker.Fail(time.Now())
			retryHint = atlasapi.ParseRetryAfter(resp)
			continue
		}
		// Permanent (4xx): the sub-batch is malformed or misrouted.
		return consumed, 0, lastErr
	}
	return consumed, 0, lastErr
}

func (c *Coordinator) jitterWord() uint64 { return c.jitter.Uint64() }

// ---- scatter-gather reads ----

// fanoutViews fetches every peer's mergeable snapshot view and
// validates exact partition coverage: each partition owned by exactly
// one responding peer, every peer agreeing on the partition count.
func (c *Coordinator) fanoutViews(ctx context.Context) ([]*stream.PeerView, error) {
	peers, _, err := c.snapshotPeers()
	if err != nil {
		return nil, err
	}
	views := make([]*stream.PeerView, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, pc := range peers {
		wg.Add(1)
		go func(i int, pc *peerConn) {
			defer wg.Done()
			views[i], errs[i] = fetchJSON[stream.PeerView](ctx, c, pc, atlasapi.RouteClusterView)
		}(i, pc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("peer %s: %w", peers[i].peer.ID, err)
		}
	}
	covered := make([]string, c.cfg.TotalPartitions)
	for i, v := range views {
		id := peers[i].peer.ID
		if v.TotalPartitions != c.cfg.TotalPartitions {
			return nil, fmt.Errorf("peer %s runs %d partitions, cluster runs %d", id, v.TotalPartitions, c.cfg.TotalPartitions)
		}
		for _, p := range v.Partitions {
			if p < 0 || p >= len(covered) {
				return nil, fmt.Errorf("peer %s claims partition %d outside [0, %d)", id, p, len(covered))
			}
			if covered[p] != "" {
				return nil, fmt.Errorf("partition %d claimed by both %s and %s", p, covered[p], id)
			}
			covered[p] = id
		}
	}
	for p, id := range covered {
		if id == "" {
			return nil, fmt.Errorf("partition %d unowned", p)
		}
	}
	return views, nil
}

// fanoutAnalysis is fanoutViews for the analysis contribution.
func (c *Coordinator) fanoutAnalysis(ctx context.Context) ([]*stream.AnalysisPeerView, error) {
	peers, _, err := c.snapshotPeers()
	if err != nil {
		return nil, err
	}
	views := make([]*stream.AnalysisPeerView, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, pc := range peers {
		wg.Add(1)
		go func(i int, pc *peerConn) {
			defer wg.Done()
			views[i], errs[i] = fetchJSON[stream.AnalysisPeerView](ctx, c, pc, atlasapi.RouteClusterAnalysisView)
		}(i, pc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("peer %s: %w", peers[i].peer.ID, err)
		}
	}
	covered := make([]string, c.cfg.TotalPartitions)
	for i, v := range views {
		id := peers[i].peer.ID
		if v.TotalPartitions != c.cfg.TotalPartitions {
			return nil, fmt.Errorf("peer %s runs %d partitions, cluster runs %d", id, v.TotalPartitions, c.cfg.TotalPartitions)
		}
		for _, p := range v.Partitions {
			if p < 0 || p >= len(covered) || covered[p] != "" {
				return nil, fmt.Errorf("inconsistent partition coverage at %d", p)
			}
			covered[p] = id
		}
	}
	for p, id := range covered {
		if id == "" {
			return nil, fmt.Errorf("partition %d unowned", p)
		}
	}
	return views, nil
}

// errPeerStatus carries a peer's non-200 answer through the fan-out.
type errPeerStatus struct {
	code int
	body string
}

func (e *errPeerStatus) Error() string { return fmt.Sprintf("%d: %s", e.code, e.body) }

// fetchJSON GETs one peer endpoint, breaker-guarded, and decodes T.
func fetchJSON[T any](ctx context.Context, c *Coordinator, pc *peerConn, path string) (*T, error) {
	if wait := pc.breaker.Wait(time.Now()); wait > 0 {
		return nil, fmt.Errorf("breaker open (cooling down %s)", wait.Round(time.Millisecond))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pc.peer.URL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		pc.breaker.Fail(time.Now())
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode >= 500 {
			pc.breaker.Fail(time.Now())
		}
		return nil, &errPeerStatus{code: resp.StatusCode, body: strings.TrimSpace(string(body))}
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		pc.breaker.Fail(time.Now())
		return nil, err
	}
	pc.breaker.OK()
	return &v, nil
}

// merged produces the cluster-wide snapshot, or sheds.
func (c *Coordinator) merged(w http.ResponseWriter, r *http.Request) *stream.Snapshot {
	views, err := c.fanoutViews(r.Context())
	if err != nil {
		c.shed(w, "cluster snapshot unavailable: "+err.Error(), 0)
		return nil
	}
	return stream.MergePeerViews(views, c.cfg.TotalPartitions)
}

// writeArtifact answers a rendered artifact under the same
// conditional-GET discipline the single-node server uses: ETag from the
// cluster-summed version, If-None-Match → 304, Cache-Control: no-cache.
func writeArtifact(w http.ResponseWriter, r *http.Request, etag string, body []byte) {
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if serve.ETagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

func (c *Coordinator) summary(w http.ResponseWriter, r *http.Request) {
	snap := c.merged(w, r)
	if snap == nil {
		return
	}
	body, err := serve.RenderSummary(snap)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal server error")
		c.logf("cluster: render summary: %v", err)
		return
	}
	writeArtifact(w, r, serve.ETag(snap.Version), body)
}

func (c *Coordinator) continents(w http.ResponseWriter, r *http.Request) {
	snap := c.merged(w, r)
	if snap == nil {
		return
	}
	body, err := serve.RenderContinents(snap)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal server error")
		c.logf("cluster: render continents: %v", err)
		return
	}
	writeArtifact(w, r, serve.ETag(snap.Version), body)
}

func (c *Coordinator) analysis(w http.ResponseWriter, r *http.Request) {
	views, err := c.fanoutAnalysis(r.Context())
	if err != nil {
		var ps *errPeerStatus
		if errors.As(err, &ps) && ps.code == http.StatusNotFound {
			apiError(w, http.StatusNotFound, stream.ErrAnalysisDisabled.Error())
			return
		}
		c.shed(w, "cluster analysis unavailable: "+err.Error(), 0)
		return
	}
	res, ver := stream.MergeAnalysisPeerViews(views)
	body, err := serve.RenderAnalysis(res)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal server error")
		c.logf("cluster: render analysis: %v", err)
		return
	}
	writeArtifact(w, r, serve.ETag(ver), body)
}

func (c *Coordinator) asDetail(w http.ResponseWriter, r *http.Request) {
	rest := strings.Trim(strings.TrimPrefix(r.URL.Path, "/api/v1/live/as/"), "/")
	asn, err := strconv.ParseUint(rest, 10, 32)
	if err != nil || asn == 0 {
		apiError(w, http.StatusBadRequest, fmt.Sprintf("bad asn %q", rest))
		return
	}
	snap := c.merged(w, r)
	if snap == nil {
		return
	}
	agg := snap.AS(uint32(asn))
	if agg == nil {
		apiError(w, http.StatusNotFound, fmt.Sprintf("no analyzable probes in AS%d", asn))
		return
	}
	body, err := serve.RenderASDetail(agg)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal server error")
		c.logf("cluster: render as: %v", err)
		return
	}
	writeArtifact(w, r, serve.ETag(snap.Version), body)
}

// cursor proxies the resume-cursor query to the probe's owner peer:
// cursors are shard-local state and must stay authoritative, exactly as
// single-node (never cached, never merged).
func (c *Coordinator) cursor(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("probe")
	id, err := strconv.Atoi(idStr)
	if err != nil || id <= 0 {
		apiError(w, http.StatusBadRequest, fmt.Sprintf("bad probe id %q", idStr))
		return
	}
	peers, assign, err := c.snapshotPeers()
	if err != nil {
		c.shed(w, err.Error(), 0)
		return
	}
	owner := assign[stream.PartitionOf(atlasdata.ProbeID(id), len(assign))]
	var pc *peerConn
	for _, p := range peers {
		if p.peer.ID == owner {
			pc = p
			break
		}
	}
	if pc == nil {
		c.shed(w, fmt.Sprintf("partition owner %q not in membership", owner), 0)
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, pc.peer.URL+"/api/v1/live/cursor?probe="+strconv.Itoa(id), nil)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "internal server error")
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		pc.breaker.Fail(time.Now())
		c.shed(w, fmt.Sprintf("peer %s unreachable: %v", owner, err), 0)
		return
	}
	defer resp.Body.Close()
	pc.breaker.OK()
	for _, h := range []string{"ETag", "Cache-Control", "Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck // client gone; nothing to do
}

// ---- membership & status ----

// PeerStatus is one row of /api/v1/cluster/status.
type PeerStatus struct {
	ID         string         `json:"id"`
	URL        string         `json:"url"`
	State      string         `json:"state"` // ready | starting | degraded | down
	Ready      bool           `json:"ready"`
	Partitions []int          `json:"partitions"`
	Version    stream.Version `json:"version"`
	Error      string         `json:"error,omitempty"`
}

// StatusReply is the /api/v1/cluster/status envelope.
type StatusReply struct {
	TotalPartitions int          `json:"total_partitions"`
	Rebalancing     bool         `json:"rebalancing"`
	Peers           []PeerStatus `json:"peers"`
}

func (c *Coordinator) status(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		apiError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	c.mu.RLock()
	balancing := c.balancing
	peers := make([]*peerConn, 0, len(c.order))
	for _, id := range c.order {
		peers = append(peers, c.peers[id])
	}
	c.mu.RUnlock()

	reply := StatusReply{TotalPartitions: c.cfg.TotalPartitions, Rebalancing: balancing, Peers: make([]PeerStatus, len(peers))}
	var wg sync.WaitGroup
	for i, pc := range peers {
		wg.Add(1)
		go func(i int, pc *peerConn) {
			defer wg.Done()
			reply.Peers[i] = c.peerStatus(r.Context(), pc)
		}(i, pc)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(reply) //nolint:errcheck // client gone
}

// peerStatus scrapes one peer's /readyz and /api/v1/cluster/info.
func (c *Coordinator) peerStatus(ctx context.Context, pc *peerConn) PeerStatus {
	st := PeerStatus{ID: pc.peer.ID, URL: pc.peer.URL, State: "down", Partitions: []int{}}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pc.peer.URL+"/readyz", nil)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	resp, err := c.client.Do(req)
	if err != nil {
		st.Error = err.Error()
		return st
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	var ready struct {
		Error          string `json:"error"`
		DegradedShards int    `json:"degraded_shards"`
	}
	json.Unmarshal(body, &ready) //nolint:errcheck // state derives from status code when opaque
	switch {
	case resp.StatusCode == http.StatusOK:
		st.State, st.Ready = "ready", true
	case ready.DegradedShards > 0:
		st.State = "degraded"
		st.Error = ready.Error
	default:
		st.State = "starting"
		st.Error = ready.Error
	}
	info, err := fetchJSON[atlasapi.ClusterInfo](ctx, c, pc, atlasapi.RouteClusterInfo)
	if err != nil {
		if st.Error == "" {
			st.Error = err.Error()
		}
		return st
	}
	st.Partitions = info.Partitions
	if st.Partitions == nil {
		st.Partitions = []int{}
	}
	st.Version = info.Version
	return st
}

// membersRequest is the POST /api/v1/cluster/members body: the desired
// new membership (complete list, not a delta).
type membersRequest struct {
	Peers []Peer `json:"peers"`
}

// membersReply reports what the rebalance moved.
type membersReply struct {
	Moves       []Move   `json:"moves"`
	Assignments []string `json:"assignments"`
}

// members rebalances to a new peer set: compute the new rendezvous
// assignment, then for every partition changing owner, release it from
// the current owner and adopt it on the new one — checkpoint + WAL tail
// shipped through the coordinator. Queries shed while the move is in
// flight (ownership is ambiguous), and on any failure the assignment
// keeps its last consistent value: the failed partition stays where it
// was released-from or adopted-to, and the next fan-out's coverage
// check decides whether the cluster is servable.
func (c *Coordinator) members(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		apiError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req membersRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		apiError(w, http.StatusBadRequest, "bad members body: "+err.Error())
		return
	}
	ids := make([]string, 0, len(req.Peers))
	newPeers := make(map[string]*peerConn, len(req.Peers))
	for _, p := range req.Peers {
		if p.URL == "" {
			apiError(w, http.StatusBadRequest, fmt.Sprintf("peer %q has no URL", p.ID))
			return
		}
		ids = append(ids, p.ID)
		newPeers[p.ID] = &peerConn{peer: p}
	}
	newRing, err := NewRing(ids, c.cfg.TotalPartitions)
	if err != nil {
		apiError(w, http.StatusBadRequest, err.Error())
		return
	}

	c.mu.Lock()
	if c.balancing {
		c.mu.Unlock()
		apiError(w, http.StatusConflict, "rebalance already in progress")
		return
	}
	c.balancing = true
	oldAssign := append([]string(nil), c.assign...)
	// Keep old conns (breaker history) for peers that stay; merge in the
	// new ones now so releases from departing peers and adopts on
	// arriving peers both resolve.
	for id, pc := range newPeers {
		if old, ok := c.peers[id]; ok {
			// Keep the surviving peer's conn (its breaker history), just
			// refresh the address.
			old.peer = pc.peer
			newPeers[id] = old
		}
		c.peers[id] = newPeers[id]
	}
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.balancing = false
		c.mu.Unlock()
	}()

	var moves []Move
	for p, from := range oldAssign {
		if to := newRing.Owner(p); to != from {
			moves = append(moves, Move{Partition: p, From: from, To: to})
		}
	}

	done := make([]Move, 0, len(moves))
	for _, mv := range moves {
		if err := c.movePartition(r.Context(), mv); err != nil {
			c.logf("cluster: rebalance move %d %s→%s failed: %v", mv.Partition, mv.From, mv.To, err)
			c.shed(w, fmt.Sprintf("rebalance failed at partition %d (%s→%s): %v; %d/%d moves applied",
				mv.Partition, mv.From, mv.To, err, len(done), len(moves)), 0)
			return
		}
		done = append(done, mv)
		c.mu.Lock()
		c.assign[mv.Partition] = mv.To
		c.mu.Unlock()
	}

	// Membership is now the new set: drop departed peers, fix the order.
	c.mu.Lock()
	c.peers = newPeers
	sort.Strings(ids)
	c.order = ids
	c.assign = newRing.Assignments()
	assignments := append([]string(nil), c.assign...)
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(membersReply{Moves: done, Assignments: assignments}) //nolint:errcheck // client gone
}

// movePartition ships one partition: release on the old owner, adopt on
// the new one. The released state travels through the coordinator
// verbatim (opaque JSON), so the coordinator needs no knowledge of the
// checkpoint format.
func (c *Coordinator) movePartition(ctx context.Context, mv Move) error {
	c.mu.RLock()
	from, to := c.peers[mv.From], c.peers[mv.To]
	c.mu.RUnlock()
	if from == nil {
		return fmt.Errorf("releasing peer %q not in membership", mv.From)
	}
	if to == nil {
		return fmt.Errorf("adopting peer %q not in membership", mv.To)
	}

	relBody, err := json.Marshal(map[string]int{"partition": mv.Partition})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, from.peer.URL+atlasapi.RouteClusterRelease, bytes.NewReader(relBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("release: %w", err)
	}
	state, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("release: reading state: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("release: %s: %s", resp.Status, strings.TrimSpace(string(state)))
	}

	req, err = http.NewRequestWithContext(ctx, http.MethodPost, to.peer.URL+atlasapi.RouteClusterAdopt, bytes.NewReader(state))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = c.client.Do(req)
	if err != nil {
		return fmt.Errorf("adopt: %w", err)
	}
	ab, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt: %s: %s", resp.Status, strings.TrimSpace(string(ab)))
	}
	return nil
}
