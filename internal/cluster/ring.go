// Package cluster scales the live ingest tier past one machine: N
// atlasd peers each own a slice of the probe partition space (shards,
// WAL, dead letters and serve tier exactly as single-node), and a
// coordinator routes ingest batches to partition owners and merges
// scatter-gather query fan-outs back into the single-node artifacts.
//
// The partition function is stream.PartitionOf — the same Fibonacci
// hash the single-node ingester shards with — so a cluster of N peers
// over T partitions processes exactly the record placement a single
// node with T shards would. Merging peer views in global probe-ID order
// (stream.MergePeerViews) then reproduces the single-node fold bit for
// bit: a peer boundary is just a shard boundary that happens to cross a
// network.
package cluster

import (
	"fmt"
	"sort"
)

// Ring assigns partitions to named nodes by rendezvous (highest random
// weight) hashing: every (node, partition) pair gets a deterministic
// score and the highest score owns the partition. Rendezvous hashing
// needs no virtual-node tuning and has the minimal-movement property a
// rebalance wants — adding a node only moves partitions onto it,
// removing one only moves that node's partitions off it; no third
// party's assignment ever changes.
type Ring struct {
	total int
	nodes []string
	// assign is partition → owning node, fully materialized at
	// construction (T and N are small; queries must be O(1)).
	assign []string
}

// NewRing builds the assignment for the given node IDs over total
// partitions. Node order does not matter (IDs are sorted internally);
// empty and duplicate IDs are errors.
func NewRing(nodes []string, total int) (*Ring, error) {
	if total <= 0 {
		return nil, fmt.Errorf("cluster: ring needs a positive partition count, got %d", total)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	seen := make(map[string]bool, len(nodes))
	sorted := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n)
		}
		seen[n] = true
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	r := &Ring{total: total, nodes: sorted, assign: make([]string, total)}
	for p := 0; p < total; p++ {
		best, bestScore := "", uint64(0)
		for _, n := range sorted {
			// Ties broken by node order via strict >: with sorted nodes the
			// winner is deterministic even in the (negligible) equal-score
			// case.
			if s := score(n, p); best == "" || s > bestScore {
				best, bestScore = n, s
			}
		}
		r.assign[p] = best
	}
	return r, nil
}

// score is the rendezvous weight of (node, partition): the node name is
// FNV-1a hashed, the partition mixed in SplitMix64-style. Deterministic
// across processes and architectures.
func score(node string, p int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 1099511628211
	}
	z := h ^ (uint64(p)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Total returns the ring's partition count.
func (r *Ring) Total() int { return r.total }

// Nodes returns the ring's node IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning partition p.
func (r *Ring) Owner(p int) string { return r.assign[p] }

// Partitions returns the sorted partitions a node owns (empty for an
// unknown node).
func (r *Ring) Partitions(node string) []int {
	var out []int
	for p, n := range r.assign {
		if n == node {
			out = append(out, p)
		}
	}
	return out
}

// Assignments returns the full partition → node table (a copy).
func (r *Ring) Assignments() []string { return append([]string(nil), r.assign...) }

// Moves diffs two rings over the same partition space: the partitions
// whose owner changes going from r to next, in partition order.
func (r *Ring) Moves(next *Ring) ([]Move, error) {
	if r.total != next.total {
		return nil, fmt.Errorf("cluster: ring partition counts differ: %d vs %d", r.total, next.total)
	}
	var moves []Move
	for p := 0; p < r.total; p++ {
		if r.assign[p] != next.assign[p] {
			moves = append(moves, Move{Partition: p, From: r.assign[p], To: next.assign[p]})
		}
	}
	return moves, nil
}

// Move is one partition changing owner during a rebalance.
type Move struct {
	Partition int    `json:"partition"`
	From      string `json:"from"`
	To        string `json:"to"`
}
