package wal

import (
	"bytes"
	"testing"

	"dynaddr/internal/obs"
)

func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var total float64
	for _, f := range reg.Gather() {
		if f.Name == name {
			for _, m := range f.Metrics {
				total += m.Value
			}
		}
	}
	return total
}

func histCount(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	var total int64
	for _, f := range reg.Gather() {
		if f.Name == name {
			for _, m := range f.Metrics {
				total += m.Count
			}
		}
	}
	return total
}

func TestLogMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	payload := bytes.Repeat([]byte("x"), 100)
	l, err := Open(t.TempDir(), Options{
		SegmentBytes: 512, // rotate after ~4 frames
		Sync:         SyncAlways,
		Metrics:      NewMetrics(reg, "0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	if got := metricValue(t, reg, "wal_append_total"); got != n {
		t.Errorf("wal_append_total = %v, want %d", got, n)
	}
	wantBytes := float64(n * (frameHeader + len(payload)))
	if got := metricValue(t, reg, "wal_appended_bytes_total"); got != wantBytes {
		t.Errorf("wal_appended_bytes_total = %v, want %v", got, wantBytes)
	}
	// SyncAlways: one fsync per append (rotation and Close find nothing
	// unsynced).
	if got := metricValue(t, reg, "wal_fsync_total"); got != n {
		t.Errorf("wal_fsync_total = %v, want %d", got, n)
	}
	if got := histCount(t, reg, "wal_fsync_seconds"); got != n {
		t.Errorf("wal_fsync_seconds count = %v, want %d", got, n)
	}
	// 20 frames of 108 bytes across 512-byte segments: rotation happens
	// when the active segment is already >= 512 bytes, i.e. every 5
	// appends, and the 20th append lands right after the third rotation.
	if got := metricValue(t, reg, "wal_rotations_total"); got < 3 {
		t.Errorf("wal_rotations_total = %v, want >= 3", got)
	}
}

// TestLogMetricsDisabled: a nil Metrics in Options must not panic
// anywhere on the append/sync/rotate path.
func TestLogMetricsDisabled(t *testing.T) {
	l, err := Open(t.TempDir(), Options{SegmentBytes: 256, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(bytes.Repeat([]byte("y"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if NewMetrics(nil, "0") != nil {
		t.Error("NewMetrics(nil, ...) must return nil")
	}
}
