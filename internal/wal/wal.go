// Package wal implements the segmented append-only write-ahead log the
// live ingest tier persists records into before applying them. The log
// is the crash-safety substrate of internal/stream: a shard appends
// every record it is about to apply, so after a kill the in-memory
// state can be reconstructed by replaying the log from the last
// checkpoint.
//
// On-disk layout: a directory of segment files named
// wal-<first-sequence, 16 hex digits>.seg, each a concatenation of
// frames:
//
//	[4B little-endian payload length][4B little-endian CRC32C of payload][payload]
//
// Sequence numbers start at 1 and are implicit — a frame's sequence is
// the segment's first sequence plus its index within the segment — so
// frames carry no per-record header beyond length and checksum.
//
// Crash tolerance: a process killed mid-append leaves a torn final
// frame (short header, short payload, or mismatched checksum). Open
// detects the first invalid frame, truncates its segment to the last
// valid frame, and discards any later segments, so the log always
// reopens to the longest valid prefix — a torn tail is expected damage,
// not corruption. The same holds for a bit-flipped frame in the middle
// of the log: everything from the flip onwards is dropped, and the
// caller (stream.Recover) re-ingests the lost suffix from its producer.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynaddr/internal/wire"
)

// SyncPolicy says when appended frames are fsynced to stable storage.
// The zero value syncs on every append (safe by default).
type SyncPolicy int

// Sync policies. Values greater than one mean "fsync every N appends";
// Sync is also always called on rotation and Close.
const (
	// SyncAlways fsyncs after every append: a record acknowledged is a
	// record on disk.
	SyncAlways SyncPolicy = 1
	// SyncNever leaves syncing to the OS (and to rotation/Close). A crash
	// can lose everything since the last segment rotation.
	SyncNever SyncPolicy = -1
)

// ParseSyncPolicy parses a -fsync flag value: "always", "off" (or
// "never"), or a positive integer N meaning "fsync every N appends".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "on", "1":
		return SyncAlways, nil
	case "off", "never":
		return SyncNever, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("wal: bad sync policy %q: want \"always\", \"off\" or a positive interval", s)
	}
	return SyncPolicy(n), nil
}

// String renders the policy in the form ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch {
	case p == SyncNever:
		return "off"
	case p <= SyncAlways:
		return "always"
	default:
		return strconv.Itoa(int(p))
	}
}

func (p SyncPolicy) normalized() SyncPolicy {
	if p == 0 {
		return SyncAlways
	}
	return p
}

// Options parameterise a log.
type Options struct {
	// SegmentBytes is the size past which the active segment is rotated.
	// Zero means 1 MiB.
	SegmentBytes int64
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// FirstSeq, when nonzero, is the sequence the log must begin at:
	// segments starting earlier (or a gap before it) are treated as
	// stale and discarded. Recovery uses it after a checkpoint reset so
	// a log truncated with TruncateBefore reopens cleanly. Zero infers
	// the start from the earliest segment on disk (or 1 when empty).
	FirstSeq uint64
	// Metrics, when non-nil, receives append/fsync/rotation counts.
	Metrics *Metrics
	// FS, when non-nil, routes every filesystem operation the log makes
	// (segment create/append/fsync/scan/remove). Nil means the real
	// filesystem (OSFS). The fault-injection harness substitutes a
	// failing FS here to exercise degraded-mode handling.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	o.Sync = o.Sync.normalized()
	return o
}

// The frame layout (4B length + 4B CRC32C + payload) is owned by
// internal/wire so a WAL segment and an ingest wire batch are
// byte-compatible: one frame reader serves both.
const (
	frameHeader = wire.FrameHeaderSize
	// maxFrame bounds a single payload; a length field beyond it is
	// treated as corruption, not as a huge record.
	maxFrame = wire.MaxFramePayload

	segPrefix = "wal-"
	segSuffix = ".seg"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an open write-ahead log rooted at one directory. It is not
// safe for concurrent use; in the stream tier each shard goroutine owns
// its log exclusively.
type Log struct {
	dir string
	opt Options

	f        File   // active segment
	segStart uint64 // sequence of the active segment's first frame
	segSize  int64
	nextSeq  uint64
	unsynced int
	closed   bool
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// segments lists the directory's segment files sorted by first
// sequence.
func segments(fs FS, dir string) ([]uint64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scanSegment walks one segment's frames calling fn (which may be nil)
// for each valid frame, and returns the number of valid frames and the
// byte offset where the first invalid frame (if any) begins. A clean
// segment returns valid == size.
func scanSegment(fs FS, path string, firstSeq uint64, fn func(seq uint64, payload []byte) error) (frames int, valid int64, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var (
		hdr    [frameHeader]byte
		buf    []byte
		offset int64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// EOF here is a clean end; a partial header is a torn tail.
			return frames, offset, nil
		}
		length, sum := wire.ParseFrameHeader(hdr[:])
		if length == 0 || length > maxFrame {
			return frames, offset, nil // corrupt length: stop at last valid frame
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			return frames, offset, nil // torn payload
		}
		if wire.Checksum(buf) != sum {
			return frames, offset, nil // bit rot / torn write
		}
		if fn != nil {
			if err := fn(firstSeq+uint64(frames), buf); err != nil {
				return frames, offset, err
			}
		}
		frames++
		offset += frameHeader + int64(length)
	}
}

// Open opens (or creates) the log in dir, repairing crash damage: the
// first invalid frame found — torn tail, short header, corrupt checksum
// — truncates its segment there, and all later segments are deleted, so
// the reopened log is exactly the longest valid prefix ever synced.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := segments(opt.FS, dir)
	if err != nil {
		return nil, err
	}

	// A log truncated by checkpointing legitimately starts past 1, so
	// the expected first sequence is the earliest segment's unless the
	// caller pins it with FirstSeq.
	start := opt.FirstSeq
	if start == 0 {
		if len(seqs) > 0 {
			start = seqs[0]
		} else {
			start = 1
		}
	}
	for len(seqs) > 0 && seqs[0] < start {
		// Stale segments from before the pinned start: remove them so the
		// gap check below doesn't mistake them for the log head.
		if err := opt.FS.Remove(filepath.Join(dir, segName(seqs[0]))); err != nil {
			return nil, err
		}
		seqs = seqs[1:]
	}

	l := &Log{dir: dir, opt: opt, nextSeq: start, segStart: start}
	damaged := -1 // index into seqs of the first damaged segment
	for i, first := range seqs {
		if first != l.nextSeq {
			// A gap or overlap in sequence numbering: everything from here
			// on is unusable, keep the valid prefix.
			damaged = i
			break
		}
		path := filepath.Join(dir, segName(first))
		frames, valid, err := scanSegment(opt.FS, path, first, nil)
		if err != nil {
			return nil, err
		}
		l.nextSeq = first + uint64(frames)
		fi, err := opt.FS.Stat(path)
		if err != nil {
			return nil, err
		}
		if valid != fi.Size() {
			if err := opt.FS.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			damaged = i + 1
			break
		}
	}
	if damaged >= 0 {
		for _, first := range seqs[min(damaged, len(seqs)):] {
			if err := opt.FS.Remove(filepath.Join(dir, segName(first))); err != nil {
				return nil, err
			}
		}
		seqs = seqs[:min(damaged, len(seqs))]
	}

	// Resume appending to the last surviving segment, or start fresh.
	if len(seqs) > 0 {
		l.segStart = seqs[len(seqs)-1]
		path := filepath.Join(dir, segName(l.segStart))
		f, err := opt.FS.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.f, l.segSize = f, fi.Size()
	} else {
		if err := l.openSegment(l.nextSeq); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *Log) openSegment(firstSeq uint64) error {
	f, err := l.opt.FS.OpenFile(filepath.Join(l.dir, segName(firstSeq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f, l.segStart, l.segSize = f, firstSeq, 0
	return syncDir(l.opt.FS, l.dir)
}

// NextSeq returns the sequence the next Append will be assigned.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one frame and returns its sequence number. Depending on
// the sync policy the frame may not be durable until the next Sync,
// rotation or Close.
func (l *Log) Append(payload []byte) (uint64, error) {
	if l.closed {
		return 0, ErrClosed
	}
	if len(payload) == 0 || len(payload) > maxFrame {
		return 0, fmt.Errorf("wal: payload size %d out of range", len(payload))
	}
	if l.segSize >= l.opt.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	var hdr [frameHeader]byte
	wire.PutFrameHeader(hdr[:], payload)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := l.f.Write(payload); err != nil {
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.segSize += frameHeader + int64(len(payload))
	l.unsynced++
	l.opt.Metrics.appended(frameHeader + len(payload))
	if every := int(l.opt.Sync); every > 0 && l.unsynced >= every {
		if err := l.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// rotate closes the active segment (synced) and starts a new one whose
// first sequence is the next append's.
func (l *Log) rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.opt.Metrics.rotated()
	return l.openSegment(l.nextSeq)
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.opt.Metrics.fsynced(time.Since(start))
	l.unsynced = 0
	return nil
}

// Close syncs and closes the active segment. The log is unusable
// afterwards; Close is idempotent.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	err := l.Sync()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// TruncateBefore removes whole segments every one of whose frames has a
// sequence below seq — the checkpoint-driven space reclamation. The
// active segment is never removed. Frames below seq that share a
// segment with frames at or above it are kept (truncation is
// segment-granular); Replay callers skip them by sequence.
func (l *Log) TruncateBefore(seq uint64) error {
	if l.closed {
		return ErrClosed
	}
	seqs, err := segments(l.opt.FS, l.dir)
	if err != nil {
		return err
	}
	removed := false
	for i, first := range seqs {
		if first == l.segStart {
			break // never the active segment
		}
		// The segment's frames end where the next segment begins.
		var next uint64
		if i+1 < len(seqs) {
			next = seqs[i+1]
		} else {
			next = l.segStart
		}
		if next > seq {
			break // this segment still holds frames >= seq
		}
		if err := l.opt.FS.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return err
		}
		removed = true
	}
	if removed {
		return syncDir(l.opt.FS, l.dir)
	}
	return nil
}

// Replay calls fn for every valid frame with sequence >= from, in
// order. Damage (torn tail, corrupt frame) cleanly ends the replay at
// the last valid frame, mirroring Open's repair; fn errors abort and
// are returned.
func Replay(dir string, from uint64, fn func(seq uint64, payload []byte) error) error {
	// Replay reads via the real filesystem: it is the recovery path, and
	// injected write faults have nothing to say about reads.
	seqs, err := segments(OSFS, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	expect := uint64(0)
	for _, first := range seqs {
		if expect != 0 && first != expect {
			return nil // gap: valid prefix ends at the previous segment
		}
		path := filepath.Join(dir, segName(first))
		frames, valid, err := scanSegment(OSFS, path, first, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			return fn(seq, payload)
		})
		if err != nil {
			return err
		}
		expect = first + uint64(frames)
		if fi, statErr := os.Stat(path); statErr == nil && valid != fi.Size() {
			return nil // damaged mid-log: stop at the last valid frame
		}
	}
	return nil
}

// Collect returns copies of every valid frame payload with sequence >=
// from, in order — the log's tail past a checkpoint, packaged for
// shipping to another node. It is Replay without the apply: the caller
// gets raw payloads it can re-append verbatim into a fresh log, which
// preserves the frame encoding (and therefore crash recovery) on the
// receiving side.
func Collect(dir string, from uint64) ([][]byte, error) {
	var out [][]byte
	err := Replay(dir, from, func(seq uint64, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// syncDir fsyncs a directory so segment creation and removal survive a
// crash. fsync on a directory is advisory on some platforms and
// filesystems, so its failure is tolerated rather than failing the
// append path over it.
func syncDir(fs FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
