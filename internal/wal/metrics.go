package wal

import (
	"time"

	"dynaddr/internal/obs"
)

// Metrics is the log's instrumentation handle. A nil *Metrics (the
// default) records nothing, so callers that don't care pass nothing
// and the append path stays branch-plus-return cheap.
//
// fsync latency is a single histogram shared across shards — the
// distribution is a property of the disk, not of any one shard — while
// the counters carry a shard label so stalls can be localised.
type Metrics struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	fsyncSec  *obs.Histogram
	rotations *obs.Counter
}

// NewMetrics resolves the log's instruments in reg under the given
// shard label. Returns nil (record nothing) when reg is nil.
func NewMetrics(reg *obs.Registry, shard string) *Metrics {
	if reg == nil {
		return nil
	}
	l := obs.L("shard", shard)
	return &Metrics{
		appends: reg.Counter("wal_append_total",
			"Frames appended to the write-ahead log.", l),
		bytes: reg.Counter("wal_appended_bytes_total",
			"Bytes appended to the write-ahead log, frame headers included.", l),
		fsyncs: reg.Counter("wal_fsync_total",
			"fsync calls issued by the write-ahead log.", l),
		fsyncSec: reg.Histogram("wal_fsync_seconds",
			"Write-ahead log fsync latency in seconds.", nil),
		rotations: reg.Counter("wal_rotations_total",
			"Write-ahead log segment rotations.", l),
	}
}

func (m *Metrics) appended(frameBytes int) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.bytes.Add(int64(frameBytes))
}

func (m *Metrics) fsynced(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncSec.Observe(d.Seconds())
}

func (m *Metrics) rotated() {
	if m == nil {
		return
	}
	m.rotations.Inc()
}
