package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		payload := []byte(fmt.Sprintf("record-%04d", i))
		seq, err := l.Append(payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d assigned seq %d, want %d", i, seq, want)
		}
	}
}

func replayAll(t *testing.T, dir string, from uint64) []string {
	t.Helper()
	var got []string
	err := Replay(dir, from, func(seq uint64, payload []byte) error {
		got = append(got, fmt.Sprintf("%d:%s", seq, payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d frames, want 100", len(got))
	}
	if got[0] != "1:record-0000" || got[99] != "100:record-0099" {
		t.Fatalf("frames out of order: first %q last %q", got[0], got[99])
	}
	// Replay from mid-log skips earlier sequences.
	if tail := replayAll(t, dir, 51); len(tail) != 50 || tail[0] != "51:record-0050" {
		t.Fatalf("replay from 51: %d frames, first %v", len(tail), tail)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.NextSeq() != 11 {
		t.Fatalf("reopened NextSeq = %d, want 11", l.NextSeq())
	}
	appendN(t, l, 10, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir, 0); len(got) != 20 {
		t.Fatalf("replayed %d frames after reopen, want 20", len(got))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	segsBefore, err := segments(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsBefore) < 4 {
		t.Fatalf("rotation produced %d segments, want several", len(segsBefore))
	}

	// A checkpoint at seq 25 makes frames <= 25 obsolete.
	if err := l.TruncateBefore(26); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := segments(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncate removed nothing: %d -> %d segments", len(segsBefore), len(segsAfter))
	}
	// Everything from seq 26 on must still replay; the kept head of a
	// partially obsolete segment may replay earlier frames too, which
	// callers skip by sequence.
	got := replayAll(t, dir, 26)
	if len(got) != 15 || got[0] != "26:record-0025" || got[14] != "40:record-0039" {
		t.Fatalf("replay after truncate: %d frames, first %v", len(got), got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDamageTolerance is the satellite's table test: torn final frames,
// bit-flipped checksums and empty segment files must all reopen (and
// replay) to the last valid record instead of failing.
func TestDamageTolerance(t *testing.T) {
	cases := []struct {
		name string
		// damage mutates the log directory after a clean 20-record run.
		damage func(t *testing.T, dir string)
		// want is the number of frames that must survive; -1 means "fewer
		// than 20 but at least 1".
		want int
	}{
		{
			name:   "clean",
			damage: func(t *testing.T, dir string) {},
			want:   20,
		},
		{
			name: "torn tail: final frame cut mid-payload",
			damage: func(t *testing.T, dir string) {
				chopLastSegment(t, dir, 5)
			},
			want: 19,
		},
		{
			name: "torn tail: partial header",
			damage: func(t *testing.T, dir string) {
				// A frame is 8B header + 11B payload = 19B; leaving 3 bytes
				// of the last frame leaves a short header.
				chopLastSegment(t, dir, 16)
			},
			want: 19,
		},
		{
			name: "bit-flipped payload fails CRC",
			damage: func(t *testing.T, dir string) {
				// Each frame is 8B header + 11B payload = 19B; offset 200
				// lands inside frame 10's payload.
				flipByteInLastSegment(t, dir, 200)
			},
			want: -1,
		},
		{
			name: "corrupt length field",
			damage: func(t *testing.T, dir string) {
				// Overwrite a mid-segment frame's length with an absurd value.
				path := lastSegment(t, dir)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				binary.LittleEndian.PutUint32(data[19*3:], 1<<30)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: -1,
		},
		{
			name: "empty segment file",
			damage: func(t *testing.T, dir string) {
				// A crash between rotation's create and the first append
				// leaves a zero-byte segment.
				if err := os.WriteFile(filepath.Join(dir, segName(21)), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: 20,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 20)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, dir)

			// Replay on the damaged directory stops at the last valid frame.
			got := replayAll(t, dir, 0)
			switch {
			case tc.want >= 0 && len(got) != tc.want:
				t.Fatalf("replayed %d frames, want %d", len(got), tc.want)
			case tc.want < 0 && (len(got) == 0 || len(got) >= 20):
				t.Fatalf("replayed %d frames, want a proper valid prefix", len(got))
			}
			for i, frame := range got {
				if want := fmt.Sprintf("%d:record-%04d", i+1, i); frame != want {
					t.Fatalf("frame %d = %q, want %q", i, frame, want)
				}
			}

			// Reopen repairs the damage and appends continue from the last
			// valid sequence.
			l, err = Open(dir, Options{Sync: SyncNever})
			if err != nil {
				t.Fatalf("reopen after damage: %v", err)
			}
			if want := uint64(len(got) + 1); l.NextSeq() != want {
				t.Fatalf("reopened NextSeq = %d, want %d", l.NextSeq(), want)
			}
			if _, err := l.Append([]byte("post-repair")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			after := replayAll(t, dir, 0)
			if len(after) != len(got)+1 || after[len(after)-1] != fmt.Sprintf("%d:post-repair", len(got)+1) {
				t.Fatalf("post-repair replay: %v", after[max(0, len(after)-2):])
			}
		})
	}
}

func TestDamagedMidLogDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(segs))
	}
	// Flip a byte in a middle segment: the valid prefix ends inside it,
	// and everything after — including whole later segments — is dropped
	// on reopen.
	mid := filepath.Join(dir, segName(segs[1]))
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, 0)
	if len(got) == 0 || len(got) >= 40 {
		t.Fatalf("replayed %d frames, want a proper prefix", len(got))
	}
	l, err = Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(got) + 1); l.NextSeq() != want {
		t.Fatalf("NextSeq = %d, want %d", l.NextSeq(), want)
	}
	left, err := segments(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("reopen kept %d of %d segments despite mid-log damage", len(left), len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenAfterTruncate is the regression test for the checkpoint
// path: once TruncateBefore has removed the log's head, the earliest
// surviving segment starts past sequence 1, and reopening must treat
// that as the legitimate log start rather than as damage.
func TestReopenAfterTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.TruncateBefore(26); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{SegmentBytes: 64, Sync: SyncNever})
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	if l.NextSeq() != 41 {
		t.Fatalf("reopened NextSeq = %d, want 41", l.NextSeq())
	}
	appendN(t, l, 40, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, 26)
	if len(got) != 20 || got[0] != "26:record-0025" || got[19] != "45:record-0044" {
		t.Fatalf("replay after truncated reopen: %d frames, first %v", len(got), got[:min(len(got), 2)])
	}
}

// TestOpenFirstSeqReset covers the recovery reset: when a checkpoint is
// ahead of whatever survives in the log, Recover reopens with FirstSeq
// pinned past the checkpoint, discarding the stale log.
func TestOpenFirstSeqReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint says seq 30 is durable; the surviving log only reaches
	// 10, so the whole log is stale and the new head starts at 31.
	l, err = Open(dir, Options{Sync: SyncNever, FirstSeq: 31})
	if err != nil {
		t.Fatal(err)
	}
	if l.NextSeq() != 31 {
		t.Fatalf("NextSeq = %d, want 31", l.NextSeq())
	}
	if seq, err := l.Append([]byte("fresh")); err != nil || seq != 31 {
		t.Fatalf("append after reset: seq %d, %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir, 0)
	if len(got) != 1 || got[0] != "31:fresh" {
		t.Fatalf("replay after reset: %v", got)
	}
}

func TestSyncPolicyParsing(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"on", SyncAlways, true},
		{"off", SyncNever, true},
		{"never", SyncNever, true},
		{"64", SyncPolicy(64), true},
		{"1", SyncAlways, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"sometimes", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseSyncPolicy(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if tc.ok {
			if back, err := ParseSyncPolicy(got.String()); err != nil || back != got {
				t.Errorf("policy %v round-trips to %v, %v", got, back, err)
			}
		}
	}
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := segments(OSFS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

// chopLastSegment removes the final n bytes of the newest segment,
// simulating a crash mid-write.
func chopLastSegment(t *testing.T, dir string, n int64) {
	t.Helper()
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, max(0, fi.Size()-n)); err != nil {
		t.Fatal(err)
	}
}

// flipByteInLastSegment XORs one byte at offset, simulating bit rot.
func flipByteInLastSegment(t *testing.T, dir string, offset int64) {
	t.Helper()
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if offset >= int64(len(data)) {
		t.Fatalf("offset %d beyond segment size %d", offset, len(data))
	}
	data[offset] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWALAppend measures append throughput under the three fsync
// policies the -fsync flag exposes (EXPERIMENTS.md records the spread).
func BenchmarkWALAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 256)
	for _, tc := range []struct {
		name string
		sync SyncPolicy
	}{
		{"fsync=always", SyncAlways},
		{"fsync=64", SyncPolicy(64)},
		{"fsync=off", SyncNever},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dir := b.TempDir()
			l, err := Open(dir, Options{SegmentBytes: 8 << 20, Sync: tc.sync})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
