package wal

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// faultyFS is a minimal fault-injecting FS for the append-error table
// test (the full-featured one lives in internal/faultinject, which
// imports this package and so cannot be used here). It fails writes
// after a byte budget, fails syncs after a count, or fails creates.
type faultyFS struct {
	writeBudget int64 // bytes until writes fail; <0 disables the fault
	syncBudget  int64 // syncs until syncs fail; <0 disables
	failCreate  bool
	tripped     bool
}

type faultyFile struct {
	File
	fs *faultyFS
}

func errInjected(op string) error { return fmt.Errorf("faultyfs: injected %s failure", op) }

func (f *faultyFile) Write(p []byte) (int, error) {
	if f.fs.writeBudget < 0 {
		return f.File.Write(p)
	}
	f.fs.writeBudget -= int64(len(p))
	if f.fs.writeBudget >= 0 {
		return f.File.Write(p)
	}
	// Persist the prefix that still fit — the torn tail a filling disk
	// leaves behind.
	f.fs.tripped = true
	allowed := int64(len(p)) + f.fs.writeBudget
	if allowed < 0 {
		allowed = 0
	}
	n := 0
	if allowed > 0 {
		n, _ = f.File.Write(p[:allowed])
	}
	return n, errInjected("write")
}

func (f *faultyFile) Sync() error {
	if f.fs.syncBudget < 0 {
		return f.File.Sync()
	}
	if f.fs.syncBudget--; f.fs.syncBudget >= 0 {
		return f.File.Sync()
	}
	f.fs.tripped = true
	return errInjected("sync")
}

type wrapFS struct {
	FS
	f *faultyFS
}

func (w wrapFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if w.f.failCreate && flag&os.O_CREATE != 0 {
		w.f.tripped = true
		return nil, errInjected("create")
	}
	file, err := w.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: file, fs: w.f}, nil
}

// TestAppendErrorRecovery drives the log through injected write-path
// failures — ENOSPC mid-segment, fsync failure, rotation (segment
// create) failure — and asserts that reopening on the real filesystem
// repairs the torn tail and recovers byte-identically: every
// acknowledged append replays exactly, in order, and nothing fabricated
// appears after it.
func TestAppendErrorRecovery(t *testing.T) {
	payload := func(i int) []byte { return []byte(fmt.Sprintf("fault-record-%06d", i)) }
	const frameBytes = frameHeader + 18 // header + payload above

	cases := []struct {
		name string
		fs   faultyFS
		opt  Options
		// extraOK is the number of unacknowledged records the replay may
		// legitimately still contain (bytes written but the append call
		// failed later, e.g. at fsync).
		extraOK int
	}{
		{
			name: "ENOSPC mid-segment",
			// Budget runs out inside the 6th frame, tearing it.
			fs:      faultyFS{writeBudget: 5*frameBytes + 9, syncBudget: -1},
			opt:     Options{Sync: SyncAlways},
			extraOK: 0,
		},
		{
			name: "ENOSPC mid-header",
			fs:   faultyFS{writeBudget: 3*frameBytes + 2, syncBudget: -1},
			opt:  Options{Sync: SyncAlways},
		},
		{
			name: "fsync failure",
			// The 4th append's fsync fails after its bytes hit the file, so
			// one unacked record may survive on disk.
			fs:      faultyFS{writeBudget: -1, syncBudget: 3},
			opt:     Options{Sync: SyncAlways},
			extraOK: 1,
		},
		{
			name: "rotation failure",
			// Segments fit ~2 frames; the third append's rotation fails at
			// segment creation before any of its bytes are written.
			fs:      faultyFS{writeBudget: -1, syncBudget: -1, failCreate: true},
			opt:     Options{SegmentBytes: 2 * frameBytes, Sync: SyncAlways},
			extraOK: 0,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := tc.fs
			armed := ffs.failCreate
			// The initial segment create must succeed; arm create faults
			// only after Open.
			ffs.failCreate = false
			opt := tc.opt
			opt.FS = wrapFS{FS: OSFS, f: &ffs}
			l, err := Open(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			ffs.failCreate = armed

			var acked [][]byte
			var appendErr error
			for i := 0; i < 64; i++ {
				if _, err := l.Append(payload(i)); err != nil {
					appendErr = err
					break
				}
				acked = append(acked, payload(i))
			}
			if appendErr == nil {
				t.Fatal("fault never tripped an append")
			}
			if !ffs.tripped {
				t.Fatalf("append failed for the wrong reason: %v", appendErr)
			}
			l.Close() // best effort; the log is broken

			// Reopen on the healthy filesystem: repair must keep exactly the
			// acked prefix (plus at most extraOK written-but-unacked records).
			l2, err := Open(dir, Options{Sync: SyncAlways})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			var replayed [][]byte
			if err := Replay(dir, 0, func(seq uint64, p []byte) error {
				replayed = append(replayed, append([]byte(nil), p...))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(replayed) < len(acked) || len(replayed) > len(acked)+tc.extraOK {
				t.Fatalf("replayed %d records, want %d (+ up to %d unacked)",
					len(replayed), len(acked), tc.extraOK)
			}
			for i, want := range acked {
				if !bytes.Equal(replayed[i], want) {
					t.Fatalf("record %d = %q, want %q", i, replayed[i], want)
				}
			}
			if want := uint64(len(replayed) + 1); l2.NextSeq() != want {
				t.Fatalf("reopened NextSeq = %d, want %d", l2.NextSeq(), want)
			}

			// The repaired log keeps working.
			if _, err := l2.Append([]byte("post-repair")); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
