package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the slice of the filesystem the log touches, so tests
// and the chaos harness can inject write/sync faults (ENOSPC, I/O
// errors) without patching the OS. The default, OSFS, is the real
// filesystem; internal/faultinject provides a fault-injecting wrapper.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	// Open opens a file read-only (segment scans, directory fsync).
	Open(name string) (File, error)
	// OpenFile is the general open used for appending and creating
	// segments; flag and perm follow os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	Remove(name string) error
}

// File is the per-file surface the log needs from an FS.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Stat() (os.FileInfo, error)
}

// OSFS is the real filesystem, the default when Options.FS is nil.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ProbeWrite checks that dir accepts durable writes by creating,
// writing, fsyncing and removing a scratch file. The degraded-shard
// re-arm loop uses it to decide whether reopening the log is worth
// attempting; a nil fs probes the real filesystem.
func ProbeWrite(fs FS, dir string) error {
	if fs == nil {
		fs = OSFS
	}
	path := filepath.Join(dir, ".probe")
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("probe\n"))
	serr := f.Sync()
	cerr := f.Close()
	rerr := fs.Remove(path)
	for _, err := range []error{werr, serr, cerr, rerr} {
		if err != nil {
			return err
		}
	}
	return nil
}
