// Package outage generates per-probe power and network outage processes
// for the simulator.
//
// The paper associates address changes with two event classes observed
// at the CPE: power outages (the probe reboots, its uptime counter
// resets) and network outages (the probe stays up but its k-root pings
// all fail while LTS grows). Empirically most interruptions are brief —
// CPE reboots and reconnects — with a heavy tail out to multi-day
// failures (Figure 9's histogram). Arrivals are Poisson; durations are a
// mixture of short uniform interruptions and a capped Pareto tail.
package outage

import (
	"fmt"
	"sort"

	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

// Kind classifies an outage event.
type Kind int

// Outage kinds.
const (
	Power Kind = iota
	Network
)

// String names the kind.
func (k Kind) String() string {
	if k == Power {
		return "power"
	}
	return "network"
}

// Event is one outage: connectivity (and for Power, electricity) is lost
// for Duration starting at Start.
type Event struct {
	Kind     Kind
	Start    simclock.Time
	Duration simclock.Duration
}

// End returns the instant connectivity returns.
func (e Event) End() simclock.Time { return e.Start.Add(e.Duration) }

// Config parameterises the outage process.
type Config struct {
	// PowerPerYear and NetworkPerYear are mean event counts per year of
	// simulated time for each kind.
	PowerPerYear   float64
	NetworkPerYear float64
	// ShortFrac is the fraction of events that are brief interruptions
	// (30 s – 5 min): CPE reboots, cable re-plugs, line resets.
	ShortFrac float64
	// ParetoXm and ParetoAlpha shape the heavy-tailed remainder, in
	// seconds.
	ParetoXm    float64
	ParetoAlpha float64
	// MaxDuration caps the tail so a single event cannot consume the
	// study year.
	MaxDuration simclock.Duration
}

// DefaultConfig returns duration parameters that reproduce the outage-
// duration histogram shape of the paper's Figure 9: mass concentrated
// below an hour, a tail past a week.
func DefaultConfig() Config {
	return Config{
		PowerPerYear:   14,
		NetworkPerYear: 22,
		ShortFrac:      0.50,
		ParetoXm:       120,
		ParetoAlpha:    0.55,
		MaxDuration:    14 * simclock.Day,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.PowerPerYear < 0 || c.NetworkPerYear < 0 {
		return fmt.Errorf("outage: negative event rate")
	}
	if c.ShortFrac < 0 || c.ShortFrac > 1 {
		return fmt.Errorf("outage: ShortFrac %v outside [0,1]", c.ShortFrac)
	}
	if c.ParetoXm <= 0 || c.ParetoAlpha <= 0 {
		return fmt.Errorf("outage: Pareto parameters must be positive")
	}
	if c.MaxDuration <= 0 {
		return fmt.Errorf("outage: MaxDuration must be positive")
	}
	return nil
}

// minGap separates consecutive outages so that reconnection bookkeeping
// (TCP re-establishment, measurement rounds) never straddles two events.
const minGap = 30 * simclock.Minute

// Generate produces the sorted, non-overlapping outage events for one
// probe across [from, to). Events whose start would overlap the previous
// event's recovery window are dropped, thinning the Poisson process
// slightly; rates are low enough that the effect is negligible.
func Generate(cfg Config, rnd *rng.RNG, from, to simclock.Time) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !from.Before(to) {
		return nil, fmt.Errorf("outage: empty interval [%v, %v)", from, to)
	}
	span := to.Sub(from)
	year := float64(365 * simclock.Day)

	var events []Event
	arrivals := func(kind Kind, perYear float64, r *rng.RNG) {
		if perYear <= 0 {
			return
		}
		meanGap := year / perYear
		at := from.Add(simclock.Duration(r.Exp(meanGap)))
		for at.Before(to) {
			events = append(events, Event{
				Kind:     kind,
				Start:    at,
				Duration: drawDuration(cfg, r),
			})
			at = at.Add(simclock.Duration(r.Exp(meanGap)))
		}
	}
	arrivals(Power, cfg.PowerPerYear, rnd.Split("power"))
	arrivals(Network, cfg.NetworkPerYear, rnd.Split("network"))
	_ = span

	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		return events[i].Kind < events[j].Kind
	})

	// Thin overlaps: keep an event only if it starts after the previous
	// kept event's end plus the recovery gap, and truncate events at the
	// study end.
	out := events[:0]
	var lastEnd simclock.Time
	for _, e := range events {
		if len(out) > 0 && !e.Start.After(lastEnd.Add(minGap)) {
			continue
		}
		if e.End().After(to) {
			e.Duration = to.Sub(e.Start)
			if e.Duration <= 0 {
				continue
			}
		}
		out = append(out, e)
		lastEnd = e.End()
	}
	return out, nil
}

func drawDuration(cfg Config, r *rng.RNG) simclock.Duration {
	if r.Bool(cfg.ShortFrac) {
		// Brief interruption: 30 s to 5 min, uniform.
		return simclock.Duration(30 + r.Int63n(271))
	}
	d := simclock.Duration(r.Pareto(cfg.ParetoXm, cfg.ParetoAlpha))
	if d > cfg.MaxDuration {
		d = cfg.MaxDuration
	}
	if d < 30 {
		d = 30
	}
	return d
}
