package outage

import (
	"testing"

	"dynaddr/internal/rng"
	"dynaddr/internal/simclock"
)

func genYear(t *testing.T, cfg Config, seed uint64) []Event {
	t.Helper()
	events, err := Generate(cfg, rng.New(seed), simclock.StudyStart, simclock.StudyEnd)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{PowerPerYear: -1, NetworkPerYear: 1, ShortFrac: 0.5, ParetoXm: 1, ParetoAlpha: 1, MaxDuration: 1},
		{PowerPerYear: 1, NetworkPerYear: 1, ShortFrac: 1.5, ParetoXm: 1, ParetoAlpha: 1, MaxDuration: 1},
		{PowerPerYear: 1, NetworkPerYear: 1, ShortFrac: 0.5, ParetoXm: 0, ParetoAlpha: 1, MaxDuration: 1},
		{PowerPerYear: 1, NetworkPerYear: 1, ShortFrac: 0.5, ParetoXm: 1, ParetoAlpha: 1, MaxDuration: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad case %d should fail", i)
		}
	}
}

func TestGenerateEmptyInterval(t *testing.T) {
	if _, err := Generate(DefaultConfig(), rng.New(1), simclock.StudyEnd, simclock.StudyStart); err == nil {
		t.Error("reversed interval should fail")
	}
}

func TestEventsSortedNonOverlapping(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		events := genYear(t, DefaultConfig(), seed)
		for i, e := range events {
			if e.Start < simclock.StudyStart || e.End() > simclock.StudyEnd {
				t.Fatalf("seed %d: event %d outside study: %+v", seed, i, e)
			}
			if e.Duration <= 0 {
				t.Fatalf("seed %d: event %d non-positive duration", seed, i)
			}
			if i > 0 {
				prev := events[i-1]
				if !e.Start.After(prev.End()) {
					t.Fatalf("seed %d: events %d,%d overlap", seed, i-1, i)
				}
				if e.Start.Sub(prev.End()) < 30*simclock.Minute {
					t.Fatalf("seed %d: gap below minimum between %d and %d", seed, i-1, i)
				}
			}
		}
	}
}

func TestEventCountNearRates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerPerYear = 20
	cfg.NetworkPerYear = 40
	var power, network int
	const trials = 50
	for seed := uint64(0); seed < trials; seed++ {
		for _, e := range genYear(t, cfg, seed) {
			if e.Kind == Power {
				power++
			} else {
				network++
			}
		}
	}
	avgPower := float64(power) / trials
	avgNetwork := float64(network) / trials
	if avgPower < 15 || avgPower > 25 {
		t.Errorf("mean power outages = %v, want ~20", avgPower)
	}
	if avgNetwork < 33 || avgNetwork > 47 {
		t.Errorf("mean network outages = %v, want ~40", avgNetwork)
	}
}

func TestZeroRatesProduceNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PowerPerYear = 0
	cfg.NetworkPerYear = 0
	if events := genYear(t, cfg, 1); len(events) != 0 {
		t.Errorf("zero rates produced %d events", len(events))
	}
}

func TestDurationMixtureShape(t *testing.T) {
	// Figure 9's histogram: most outages short, a real tail past a day.
	cfg := DefaultConfig()
	cfg.PowerPerYear = 200
	cfg.NetworkPerYear = 200
	var short, day int
	var total int
	for seed := uint64(0); seed < 20; seed++ {
		for _, e := range genYear(t, cfg, seed) {
			total++
			if e.Duration < 5*simclock.Minute {
				short++
			}
			if e.Duration >= simclock.Day {
				day++
			}
		}
	}
	if total == 0 {
		t.Fatal("no events generated")
	}
	shortFrac := float64(short) / float64(total)
	dayFrac := float64(day) / float64(total)
	if shortFrac < 0.4 {
		t.Errorf("short fraction = %v, want a majority-ish share", shortFrac)
	}
	if dayFrac <= 0 {
		t.Errorf("no day-plus outages in %d events; tail missing", total)
	}
	if dayFrac > 0.2 {
		t.Errorf("day-plus fraction = %v, tail too fat", dayFrac)
	}
}

func TestDurationCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ShortFrac = 0
	cfg.ParetoAlpha = 0.3 // extremely heavy tail to stress the cap
	cfg.PowerPerYear = 100
	cfg.NetworkPerYear = 0
	for seed := uint64(0); seed < 10; seed++ {
		for _, e := range genYear(t, cfg, seed) {
			if e.Duration > cfg.MaxDuration {
				t.Fatalf("event duration %v exceeds cap %v", e.Duration, cfg.MaxDuration)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := genYear(t, DefaultConfig(), 42)
	b := genYear(t, DefaultConfig(), 42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestKindString(t *testing.T) {
	if Power.String() != "power" || Network.String() != "network" {
		t.Error("Kind.String wrong")
	}
}

func TestEventEnd(t *testing.T) {
	e := Event{Start: 100, Duration: 50}
	if e.End() != 150 {
		t.Errorf("End = %v", e.End())
	}
}
