package dynaddr

import (
	"dynaddr/internal/liveanalysis"
	"dynaddr/internal/stream"
)

// LiveResult holds the paper's tables and figures as computed by the
// streaming analysis engine — the same answers a batch Report gives,
// maintained incrementally at apply time. The streaming ingester
// returns one per analysis barrier; LiveFromBatch builds the reference
// value a finished dataset implies. Its Render* methods produce the
// same table shapes as the batch Report's.
type LiveResult = liveanalysis.Result

// LiveOptions tune the live fold (AS selection for the figures). The
// zero value matches the batch defaults.
type LiveOptions = liveanalysis.Options

// ChurnWindow is one study day's address-change churn row in a
// LiveResult.
type ChurnWindow = liveanalysis.ChurnWindow

// ErrLiveAnalysisDisabled is returned by the streaming ingester's
// analysis queries when it was built without the live analysis engine
// (stream.Config.Analysis false); HTTP callers see it as 404.
var ErrLiveAnalysisDisabled = stream.ErrAnalysisDisabled

// LiveFromBatch computes the live-analysis answer a complete dataset
// implies, in one pass over the batch structures. It is the oracle the
// streaming engine is tested against: ingesting a dataset record by
// record and querying at the end yields a byte-identical LiveResult.
func LiveFromBatch(ds *Dataset, opts LiveOptions) *LiveResult {
	return liveanalysis.FromBatch(ds, opts)
}
