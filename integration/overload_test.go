package integration

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/backoff"
	"dynaddr/internal/sim"
)

// splitDataset partitions a dataset's probes round-robin into k
// disjoint datasets so k producers can stream concurrently. Per-probe
// record order — the only order the ingester enforces — is preserved.
func splitDataset(ds *atlasdata.Dataset, k int) []*atlasdata.Dataset {
	ids := make([]atlasdata.ProbeID, 0, len(ds.Probes))
	for id := range ds.Probes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]*atlasdata.Dataset, k)
	for i := range parts {
		parts[i] = atlasdata.NewDataset()
	}
	for i, id := range ids {
		p := parts[i%k]
		p.Probes[id] = ds.Probes[id]
		p.ConnLogs[id] = ds.ConnLogs[id]
		p.KRoot[id] = ds.KRoot[id]
		p.Uptime[id] = ds.Uptime[id]
	}
	return parts
}

// overloadProducer returns a producer tuned for a shedding server:
// generous retry budget, short backoff so the 1s Retry-After hints are
// capped and the test stays fast.
func overloadProducer(base string) *atlasapi.StreamProducer {
	return atlasapi.NewStreamProducer(context.Background(), base,
		atlasapi.WithRetries(50),
		atlasapi.WithBackoff(backoff.Policy{Base: 10 * time.Millisecond, Max: 150 * time.Millisecond}))
}

// feedConcurrently streams each part through its own producer; every
// feed and flush must succeed despite shedding.
func feedConcurrently(t *testing.T, base string, parts []*atlasdata.Dataset) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(parts))
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *atlasdata.Dataset) {
			defer wg.Done()
			p := overloadProducer(base)
			if err := sim.ReplayDataset(part, p); err != nil {
				errs[i] = err
				return
			}
			errs[i] = p.Flush()
		}(i, part)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("producer %d: %v", i, err)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
}

// TestOverloadSheddingOverHTTP saturates a tightly-gated atlasd
// (-ingest-max-inflight 1) with concurrent producers and asserts the
// overload contract end to end: outside observers get 429 with a
// Retry-After pacing hint, the shed counter moves, and — because the
// producers honor the hint and retry — every record still lands, so
// the final analysis equals an unthrottled reference run.
func TestOverloadSheddingOverHTTP(t *testing.T) {
	bins := buildBinaries(t)
	atlasd := filepath.Join(bins, "atlasd")
	ds := crashWorld(t, 47)

	addr := pickAddr(t)
	srv := exec.Command(atlasd, "-live", "-shards", "2", "-addr", addr,
		"-ingest-max-inflight", "1", "-ingest-max-wait", "5ms", "-ingest-retry-after", "1s")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)
	base := "http://" + addr
	waitForReady(t, base)

	feedConcurrently(t, base, splitDataset(ds, 4))

	// Saturate the single slot deterministically: a chunked POST whose
	// body never arrives holds the only ingest slot inside the handler,
	// so a concurrent probe must shed. Both requests are state-invisible
	// — the stalled one closes with zero records, the probe never gets
	// in — so the analysis below stays comparable with the reference.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+atlasapi.RouteStreamRecords, pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", atlasapi.ContentTypeNDJSON)
	holderDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		holderDone <- err
	}()

	var retryAfter string
	sawShed := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !sawShed {
		resp, err := http.Post(base+atlasapi.RouteStreamRecords, atlasapi.ContentTypeNDJSON, bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		retryAfter = resp.Header.Get("Retry-After")
		resp.Body.Close()
		sawShed = resp.StatusCode == http.StatusTooManyRequests
	}
	pw.Close()
	if err := <-holderDone; err != nil {
		t.Fatalf("slot-holding request: %v", err)
	}
	if !sawShed {
		t.Error("no 429 observed with the only ingest slot held")
	} else if retryAfter == "" {
		t.Error("shed 429 carried no Retry-After header")
	}

	samples := parsePromText(t, string(getBody(t, base+"/metrics")))
	if got := promSum(samples, "ingest_shed_total", nil); got == 0 {
		t.Error("ingest_shed_total = 0 after shedding at the admission gate")
	}
	got := getBody(t, base+"/api/v1/live/summary")

	// Reference: same dataset into an ungated server, one producer.
	refAddr := pickAddr(t)
	ref := exec.Command(atlasd, "-live", "-shards", "2", "-addr", refAddr)
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ref.Process.Kill()
		ref.Wait()
	}()
	waitForListen(t, refAddr)
	refBase := "http://" + refAddr
	waitForReady(t, refBase)
	refProd := atlasapi.NewStreamProducer(context.Background(), refBase)
	if err := sim.ReplayDataset(ds, refProd); err != nil {
		t.Fatal(err)
	}
	if err := refProd.Flush(); err != nil {
		t.Fatal(err)
	}
	want := getBody(t, refBase+"/api/v1/live/summary")
	if string(got) != string(want) {
		t.Errorf("summary after shedding differs from unthrottled reference\n got: %s\nwant: %s", got, want)
	}
}

// TestDegradedWALCrashRecoveryOverHTTP is the full robustness gauntlet:
// concurrent producers feed a durable atlasd whose WAL starts failing
// with ENOSPC mid-stream (flipping shards into degraded read-only
// mode, visible on /readyz), the fault heals, the shards re-arm, and
// then the process is SIGKILLed anyway. After a restart on the same
// WAL directory and a cursor-guided resume, the analysis must be
// byte-identical to an uninterrupted run: every acked record was
// durable or re-sent, none applied twice.
func TestDegradedWALCrashRecoveryOverHTTP(t *testing.T) {
	bins := buildBinaries(t)
	atlasd := filepath.Join(bins, "atlasd")
	ds := crashWorld(t, 53)
	walDir := filepath.Join(t.TempDir(), "wal")

	addr := pickAddr(t)
	srv := exec.Command(atlasd, "-live", "-shards", "2", "-addr", addr,
		"-wal-dir", walDir, "-fsync", "always", "-checkpoint-every", "64",
		"-ingest-retry-after", "100ms",
		"-fault-wal-enospc-after", "150", "-fault-wal-heal-after", "4s")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	waitForListen(t, addr)
	base := "http://" + addr
	waitForReady(t, base)

	// Watch /readyz for the degraded window in the background: the WAL
	// fault must surface as a 503 naming degraded shards.
	sawDegraded := make(chan struct{})
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go func() {
		for watchCtx.Err() == nil {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable &&
					strings.Contains(buf.String(), "degraded") {
					close(sawDegraded)
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Feed the whole dataset through the fault: the 151st WAL write
	// fails, the producers ride out the degraded 503s on their retry
	// budget, and once the fault heals (4s) the shards re-arm and the
	// flushes complete.
	feedConcurrently(t, base, splitDataset(ds, 3))

	select {
	case <-sawDegraded:
	case <-time.After(5 * time.Second):
		t.Error("/readyz never reported degraded shards while the WAL fault was active")
	}
	stopWatch()

	// The feed completed, so every record is acked — now SIGKILL and
	// recover from the WAL alone.
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	addr = pickAddr(t)
	srv = exec.Command(atlasd, "-live", "-shards", "2", "-addr", addr,
		"-wal-dir", walDir, "-fsync", "always", "-checkpoint-every", "64")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)
	base = "http://" + addr
	waitForReady(t, base)

	// Cursor-guided resume replays anything acked but not yet durable
	// when the process died (nothing should be missing after a clean
	// flush, but the resume path is the contract under test).
	prod := atlasapi.NewStreamProducer(context.Background(), base)
	rs := &resumeSink{t: t, p: prod, base: base, cursors: make(map[atlasdata.ProbeID]*probeCursor)}
	if err := sim.ReplayDataset(ds, rs); err != nil {
		t.Fatalf("resumed feed: %v", err)
	}
	if err := prod.Flush(); err != nil {
		t.Fatalf("flushing resumed feed: %v", err)
	}
	got := getBody(t, base+"/api/v1/live/summary")

	refAddr := pickAddr(t)
	ref := exec.Command(atlasd, "-live", "-shards", "2", "-addr", refAddr)
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ref.Process.Kill()
		ref.Wait()
	}()
	waitForListen(t, refAddr)
	refBase := "http://" + refAddr
	waitForReady(t, refBase)
	refProd := atlasapi.NewStreamProducer(context.Background(), refBase)
	if err := sim.ReplayDataset(ds, refProd); err != nil {
		t.Fatal(err)
	}
	if err := refProd.Flush(); err != nil {
		t.Fatal(err)
	}
	want := getBody(t, refBase+"/api/v1/live/summary")
	if string(got) != string(want) {
		t.Errorf("recovered summary differs from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// TestDeadLetterChurnctlOverHTTP exercises the quarantine surface end
// to end with the real binaries: a poison record inside a good batch
// is quarantined (the batch still lands), churnctl -deadletter status
// reads the live counts, and after the server stops, churnctl
// -deadletter drain disposes of the durable quarantine log.
func TestDeadLetterChurnctlOverHTTP(t *testing.T) {
	bins := buildBinaries(t)
	atlasd := filepath.Join(bins, "atlasd")
	churnctl := filepath.Join(bins, "churnctl")
	walDir := filepath.Join(t.TempDir(), "wal")

	addr := pickAddr(t)
	srv := exec.Command(atlasd, "-live", "-shards", "2", "-addr", addr,
		"-wal-dir", walDir, "-fsync", "always")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	waitForListen(t, addr)
	base := "http://" + addr
	waitForReady(t, base)

	// One good record, one poison line: the batch is accepted with the
	// poison quarantined, not 400-ed.
	body := `{"kind":"uptime","probe":7001,"timestamp":1000,"uptime":60}
{"kind":"bogus","probe":7001}
`
	resp, err := http.Post(base+atlasapi.RouteStreamRecords, atlasapi.ContentTypeNDJSON, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	respBody := new(bytes.Buffer)
	respBody.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(respBody.String(), `"accepted": 1`) ||
		!strings.Contains(respBody.String(), `"quarantined": 1`) {
		t.Fatalf("poison batch: %d %q, want 200 with accepted 1, quarantined 1", resp.StatusCode, respBody)
	}
	// The snapshot barrier: quarantine rides the shard channel.
	getBody(t, base+"/api/v1/live/summary")

	status := run(t, churnctl, "-deadletter", "status", "-url", base)
	if !strings.Contains(status, "dead letters: 1") || !strings.Contains(status, "unknown-kind") {
		t.Errorf("churnctl -deadletter status -url output:\n%s", status)
	}

	// Stop the server; the quarantine log is durable.
	srv.Process.Kill()
	srv.Wait()
	stopped = true

	offline := run(t, churnctl, "-deadletter", "status", "-wal-dir", walDir)
	if !strings.Contains(offline, "dead letters: 1") {
		t.Errorf("offline status output:\n%s", offline)
	}
	list := run(t, churnctl, "-deadletter", "list", "-wal-dir", walDir)
	if !strings.Contains(list, `"reason":"unknown-kind"`) || !strings.Contains(list, `"replayable":false`) {
		t.Errorf("list output:\n%s", list)
	}

	// Drain against a fresh server: the unknown-kind entry is not
	// replayable, so it is reported and dropped, and the log truncates.
	addr2 := pickAddr(t)
	srv2 := exec.Command(atlasd, "-live", "-shards", "1", "-addr", addr2)
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()
	waitForListen(t, addr2)
	waitForReady(t, "http://"+addr2)

	drain := run(t, churnctl, "-deadletter", "drain", "-wal-dir", walDir, "-url", "http://"+addr2)
	if !strings.Contains(drain, "0 replayed") || !strings.Contains(drain, "1 unreplayable dropped") {
		t.Errorf("drain output:\n%s", drain)
	}
	after := run(t, churnctl, "-deadletter", "status", "-wal-dir", walDir)
	if !strings.Contains(after, "dead letters: 0") {
		t.Errorf("status after drain:\n%s", after)
	}
}
