package integration

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/sim"
)

// promSample is one parsed exposition sample: a metric name, its
// label set, and the value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText parses the Prometheus text format well enough for the
// metrics atlasd exposes (no escaped quotes inside label values on
// these series).
func parsePromText(t *testing.T, text string) []promSample {
	t.Helper()
	var out []promSample
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad exposition line %q", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		s := promSample{labels: map[string]string{}, value: val}
		if i := strings.IndexByte(series, '{'); i >= 0 {
			s.name = series[:i]
			body := strings.TrimSuffix(series[i+1:], "}")
			for _, pair := range strings.Split(body, ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok {
					t.Fatalf("bad label pair %q in %q", pair, line)
				}
				s.labels[k] = strings.Trim(v, `"`)
			}
		} else {
			s.name = series
		}
		out = append(out, s)
	}
	return out
}

// promSum totals every sample of name whose labels include the given
// key=value filters.
func promSum(samples []promSample, name string, filters map[string]string) float64 {
	var total float64
next:
	for _, s := range samples {
		if s.name != name {
			continue
		}
		for k, v := range filters {
			if s.labels[k] != v {
				continue next
			}
		}
		total += s.value
	}
	return total
}

// TestMetricsEndToEnd starts a durable live atlasd, streams a dataset
// into it, and checks that GET /metrics agrees with an independently
// computed tally of what was fed: ingest counters by kind, WAL appends
// covering every record, fsyncs, and the HTTP request counters for the
// stream routes.
func TestMetricsEndToEnd(t *testing.T) {
	bins := buildBinaries(t)
	ds := crashWorld(t, 31)
	walDir := filepath.Join(t.TempDir(), "wal")

	addr := pickAddr(t)
	srv := exec.Command(filepath.Join(bins, "atlasd"), "-live", "-shards", "2",
		"-wal-dir", walDir, "-fsync", "8", "-checkpoint-every", "128",
		"-addr", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)
	base := "http://" + addr
	waitForReady(t, base)

	prod := atlasapi.NewStreamProducer(context.Background(), base)
	if err := sim.ReplayDataset(ds, prod); err != nil {
		t.Fatal(err)
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}

	// The independent tally: what the dataset actually contains, counted
	// from the dataset itself.
	var wantMeta, wantConn, wantKRoot, wantUptime float64
	for id := range ds.Probes {
		wantMeta++
		wantConn += float64(len(ds.ConnLogs[id]))
		wantKRoot += float64(len(ds.KRoot[id]))
		wantUptime += float64(len(ds.Uptime[id]))
	}
	totalFed := wantMeta + wantConn + wantKRoot + wantUptime

	// A snapshot request forces the in-band barrier: every record acked
	// above is applied before the summary returns, so the subsequent
	// /metrics scrape sees final counts.
	var summary struct {
		Records struct {
			Meta     float64 `json:"meta"`
			ConnLogs float64 `json:"connlogs"`
			KRoot    float64 `json:"kroot"`
			Uptime   float64 `json:"uptime"`
			Rejected float64 `json:"rejected"`
		} `json:"records"`
	}
	getJSON(t, base+"/api/v1/live/summary", &summary)

	body := getBody(t, base+"/metrics")
	if len(body) == 0 {
		t.Fatal("empty /metrics body")
	}
	samples := parsePromText(t, string(body))

	// Ingest counters vs the dataset tally. The world generator emits
	// strictly ordered per-probe records, so nothing is rejected; assert
	// that instead of silently absorbing disagreement.
	kinds := []struct {
		kind string
		want float64
	}{
		{"meta", wantMeta}, {"connlog", wantConn},
		{"kroot", wantKRoot}, {"uptime", wantUptime},
	}
	for _, k := range kinds {
		got := promSum(samples, "ingest_records_total", map[string]string{"kind": k.kind})
		if got != k.want {
			t.Errorf("ingest_records_total{kind=%q} = %v, want %v (dataset tally)", k.kind, got, k.want)
		}
	}
	if got := promSum(samples, "ingest_records_rejected_total", nil); got != summary.Records.Rejected {
		t.Errorf("ingest_records_rejected_total = %v, want %v (summary)", got, summary.Records.Rejected)
	}

	// Every fed record is appended to a WAL before being applied.
	if got := promSum(samples, "wal_append_total", nil); got != totalFed {
		t.Errorf("wal_append_total = %v, want %v", got, totalFed)
	}
	if got := promSum(samples, "wal_fsync_total", nil); got == 0 {
		t.Error("wal_fsync_total = 0, want > 0")
	}
	if got := promSum(samples, "wal_fsync_seconds_count", nil); got == 0 {
		t.Error("wal_fsync_seconds histogram is empty")
	}
	if got := promSum(samples, "wal_checkpoints_total", nil); got == 0 {
		t.Error("wal_checkpoints_total = 0, want > 0 with -checkpoint-every 128")
	}

	// HTTP middleware: the producer's POSTs and our summary GET must all
	// be on the books as 2xx. The producer flushes each kind's batches
	// to its stream route; at minimum one request per kind plus the
	// summary request exist.
	for _, route := range []string{
		"/api/v1/stream/probes", "/api/v1/stream/connlogs",
		"/api/v1/stream/kroot", "/api/v1/stream/uptime",
	} {
		got := promSum(samples, "http_requests_total", map[string]string{"route": route, "class": "2xx"})
		if got == 0 {
			t.Errorf("http_requests_total{route=%q,class=2xx} = 0, want > 0", route)
		}
	}
	if got := promSum(samples, "http_requests_total",
		map[string]string{"route": "/api/v1/live/summary", "class": "2xx"}); got != 1 {
		t.Errorf("http_requests_total{route=/api/v1/live/summary} = %v, want 1", got)
	}
	// /metrics itself is mounted outside the instrumentation; scraping
	// must not move the request counters.
	if got := promSum(samples, "http_requests_total", map[string]string{"route": "/metrics"}); got != 0 {
		t.Errorf("/metrics requests were instrumented (%v); the exposition must not observe itself", got)
	}

	// In-flight gauges are back to zero between requests.
	for _, s := range samples {
		if s.name == "http_in_flight" && s.value != 0 {
			t.Errorf("http_in_flight%v = %v, want 0", s.labels, s.value)
		}
	}

	// Cross-check: a second scrape's ingest counters are unchanged —
	// scraping is read-only for everything but nothing.
	again := parsePromText(t, string(getBody(t, base+"/metrics")))
	for _, k := range kinds {
		if got := promSum(again, "ingest_records_total", map[string]string{"kind": k.kind}); got != k.want {
			t.Errorf("second scrape moved ingest_records_total{kind=%q} to %v", k.kind, got)
		}
	}
}
