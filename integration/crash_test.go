package integration

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/isp"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
)

// crashWorld is a small mixed world (PPP nightly resets, DHCP lease
// churn, a static control) the crash test streams over HTTP.
func crashWorld(t *testing.T, seed uint64) *atlasdata.Dataset {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 1
	cfg.Profiles = []isp.Profile{
		{
			Name: "PeriodicNet", ASN: 100, Country: "DE", Kind: isp.PPP,
			Cohorts:  []isp.Cohort{{Period: 24 * simclock.Hour, Weight: 1}},
			SkipProb: 0.01, SameAddrProb: 0.01,
			OutageRenumberFrac: 1.0,
			NumPrefixes:        2, PrefixBits: 16, CrossPrefixProb: 0.5,
			DefaultProbes: 4,
		},
		{
			Name: "LeaseNet", ASN: 200, Country: "US", Kind: isp.DHCP,
			Lease: 4 * simclock.Hour, ReclaimMean: 30 * simclock.Day,
			NumPrefixes: 2, PrefixBits: 16, CrossPrefixProb: 0.3,
			DefaultProbes: 4,
		},
		{
			Name: "StaticNet", ASN: 300, Country: "FR", Kind: isp.Static,
			NumPrefixes: 1, PrefixBits: 16,
			DefaultProbes: 2,
		},
	}
	world, err := sim.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return world.Dataset
}

// errStopFeed ends a replay mid-stream, simulating the moment the
// process will be killed.
var errStopFeed = errors.New("stop feeding")

// prefixSink forwards the first n records to a producer, then fails.
type prefixSink struct {
	p    *atlasapi.StreamProducer
	left int
}

func (s *prefixSink) take() bool { s.left--; return s.left >= 0 }

func (s *prefixSink) Meta(m atlasdata.ProbeMeta) error {
	if !s.take() {
		return errStopFeed
	}
	return s.p.Meta(m)
}

func (s *prefixSink) ConnLog(e atlasdata.ConnLogEntry) error {
	if !s.take() {
		return errStopFeed
	}
	return s.p.ConnLog(e)
}

func (s *prefixSink) KRoot(k atlasdata.KRootRound) error {
	if !s.take() {
		return errStopFeed
	}
	return s.p.KRoot(k)
}

func (s *prefixSink) Uptime(u atlasdata.UptimeRecord) error {
	if !s.take() {
		return errStopFeed
	}
	return s.p.Uptime(u)
}

// probeCursor mirrors the /api/v1/live/cursor JSON shape.
type probeCursor struct {
	Probe    atlasdata.ProbeID `json:"probe"`
	Meta     int64             `json:"meta"`
	ConnLogs int64             `json:"connlogs"`
	KRoot    int64             `json:"kroot"`
	Uptime   int64             `json:"uptime"`
}

// resumeSink replays the full stream against a restarted server,
// skipping each probe's durable prefix as reported by the server's
// cursor endpoint — the producer side of crash recovery.
type resumeSink struct {
	t       *testing.T
	p       *atlasapi.StreamProducer
	base    string
	cursors map[atlasdata.ProbeID]*probeCursor
}

func (s *resumeSink) cursor(id atlasdata.ProbeID) *probeCursor {
	if c, ok := s.cursors[id]; ok {
		return c
	}
	var c probeCursor
	getJSON(s.t, fmt.Sprintf("%s/api/v1/live/cursor?probe=%d", s.base, id), &c)
	s.cursors[id] = &c
	return &c
}

func (s *resumeSink) Meta(m atlasdata.ProbeMeta) error {
	if c := s.cursor(m.ID); c.Meta > 0 {
		c.Meta--
		return nil
	}
	return s.p.Meta(m)
}

func (s *resumeSink) ConnLog(e atlasdata.ConnLogEntry) error {
	if c := s.cursor(e.Probe); c.ConnLogs > 0 {
		c.ConnLogs--
		return nil
	}
	return s.p.ConnLog(e)
}

func (s *resumeSink) KRoot(k atlasdata.KRootRound) error {
	if c := s.cursor(k.Probe); c.KRoot > 0 {
		c.KRoot--
		return nil
	}
	return s.p.KRoot(k)
}

func (s *resumeSink) Uptime(u atlasdata.UptimeRecord) error {
	if c := s.cursor(u.Probe); c.Uptime > 0 {
		c.Uptime--
		return nil
	}
	return s.p.Uptime(u)
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}

// waitForReady polls /readyz until the server reports ready.
func waitForReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

func totalRecords(ds *atlasdata.Dataset) int {
	n := len(ds.Probes)
	for id := range ds.Probes {
		n += len(ds.ConnLogs[id]) + len(ds.KRoot[id]) + len(ds.Uptime[id])
	}
	return n
}

// TestCrashRecoveryOverHTTP is the durability smoke end to end: a
// durable atlasd is SIGKILLed mid-stream, restarted on the same
// -wal-dir, and after a cursor-guided producer resume its live summary
// is byte-identical to a server that ingested the whole stream without
// interruption.
func TestCrashRecoveryOverHTTP(t *testing.T) {
	bins := buildBinaries(t)
	atlasd := filepath.Join(bins, "atlasd")
	ds := crashWorld(t, 23)
	walDir := filepath.Join(t.TempDir(), "wal")

	startDurable := func(addr string) *exec.Cmd {
		srv := exec.Command(atlasd, "-live", "-shards", "2",
			"-wal-dir", walDir, "-fsync", "always", "-checkpoint-every", "64",
			"-addr", addr)
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		return srv
	}

	// Phase 1: stream ~40% of the records, then SIGKILL with records
	// still queued inside the server (acks only mean "accepted into a
	// shard queue"; durability is the WAL's job, resume is the cursor's).
	addr := pickAddr(t)
	srv := startDurable(addr)
	waitForListen(t, addr)
	base := "http://" + addr
	waitForReady(t, base)

	ctx := context.Background()
	prod := atlasapi.NewStreamProducer(ctx, base)
	if err := sim.ReplayDataset(ds, &prefixSink{p: prod, left: totalRecords(ds) * 2 / 5}); !errors.Is(err, errStopFeed) {
		t.Fatalf("prefix feed ended with %v, want errStopFeed", err)
	}
	if err := prod.Flush(); err != nil {
		t.Fatalf("flushing prefix: %v", err)
	}
	if err := srv.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv.Wait()

	// Phase 2: restart on the same WAL directory; recovery runs before
	// readiness flips.
	addr = pickAddr(t)
	srv = startDurable(addr)
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)
	base = "http://" + addr
	if body := getBody(t, base+"/healthz"); len(body) == 0 {
		t.Error("empty /healthz response")
	}
	waitForReady(t, base)

	// Phase 3: resume the producer from the per-probe cursors and finish
	// the stream.
	prod = atlasapi.NewStreamProducer(ctx, base)
	rs := &resumeSink{t: t, p: prod, base: base, cursors: make(map[atlasdata.ProbeID]*probeCursor)}
	if err := sim.ReplayDataset(ds, rs); err != nil {
		t.Fatalf("resumed feed: %v", err)
	}
	if err := prod.Flush(); err != nil {
		t.Fatalf("flushing resumed feed: %v", err)
	}
	got := getBody(t, base+"/api/v1/live/summary")

	// Reference: a second server ingests the whole stream uninterrupted.
	refAddr := pickAddr(t)
	ref := exec.Command(atlasd, "-live", "-shards", "2", "-addr", refAddr)
	if err := ref.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ref.Process.Kill()
		ref.Wait()
	}()
	waitForListen(t, refAddr)
	refBase := "http://" + refAddr
	waitForReady(t, refBase)
	refProd := atlasapi.NewStreamProducer(ctx, refBase)
	if err := sim.ReplayDataset(ds, refProd); err != nil {
		t.Fatal(err)
	}
	if err := refProd.Flush(); err != nil {
		t.Fatal(err)
	}
	want := getBody(t, refBase+"/api/v1/live/summary")

	if string(got) != string(want) {
		t.Errorf("recovered summary differs from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}
