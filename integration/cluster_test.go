package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynaddr/internal/atlasapi"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/cluster"
	"dynaddr/internal/sim"
	"dynaddr/internal/stream"
)

// clusterPeerArgs builds the atlasd argument list for one durable
// cluster peer. Checkpointing is disabled so the version generation
// stays 0 on every topology — the ETag oracle needs byte-equal
// versions, and an in-memory reference never checkpoints.
func clusterPeerArgs(walDir, addr, nodeID string, total int, owned []int) []string {
	parts := "none"
	if len(owned) > 0 {
		strs := make([]string, len(owned))
		for i, p := range owned {
			strs[i] = strconv.Itoa(p)
		}
		parts = strings.Join(strs, ",")
	}
	return []string{
		"-live", "-node-id", nodeID,
		"-partitions-total", strconv.Itoa(total), "-partitions", parts,
		// Interval fsync: a SIGKILL (unlike power loss) cannot lose data
		// already write()n to the unbuffered WAL, and per-record fsync
		// makes the 5-peer topology crawl.
		"-wal-dir", walDir, "-fsync", "64", "-checkpoint-every", "-1",
		"-addr", addr,
	}
}

func getFull(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// checkClusterMatchesReference compares the three merged artifacts (and
// their ETags) against the single-node reference bytes.
func checkClusterMatchesReference(t *testing.T, coordBase string, ref map[string][]byte, refETag map[string]string) {
	t.Helper()
	for _, path := range []string{"/api/v1/live/summary", "/api/v1/live/analysis", "/api/v1/live/continents"} {
		code, body, hdr := getFull(t, coordBase+path)
		if code != http.StatusOK {
			t.Errorf("%s: %d %s", path, code, body)
			continue
		}
		if !bytes.Equal(body, ref[path]) {
			t.Errorf("%s: coordinator bytes differ from single-node reference (%d vs %d bytes)",
				path, len(body), len(ref[path]))
		}
		if got := hdr.Get("ETag"); got != refETag[path] {
			t.Errorf("%s: ETag %q, reference %q", path, got, refETag[path])
		}
	}
}

// TestClusterEquivalence is the tentpole acceptance test at the process
// level: the same dataset streamed through a coordinator over 1, 2 and
// 5 atlasd peer processes yields live summary, analysis and continents
// byte-identical to one uninterrupted single-process server — ETags
// included — and stays identical after a SIGKILL + restart of a peer
// (2-peer topology) and after a live rebalance onto a freshly booted
// peer (5-peer topology).
func TestClusterEquivalence(t *testing.T) {
	bins := buildBinaries(t)
	atlasd := filepath.Join(bins, "atlasd")
	churnctl := filepath.Join(bins, "churnctl")
	ds := crashWorld(t, 41)
	const total = 8
	ctx := context.Background()

	// Single-process reference: all partitions, in memory, whole stream.
	refAddr := pickAddr(t)
	refSrv := exec.Command(atlasd, "-live", "-shards", strconv.Itoa(total), "-addr", refAddr)
	if err := refSrv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		refSrv.Process.Kill()
		refSrv.Wait()
	}()
	waitForListen(t, refAddr)
	refBase := "http://" + refAddr
	waitForReady(t, refBase)
	refProd := atlasapi.NewStreamProducer(ctx, refBase, atlasapi.WithCodec(atlasapi.CodecBinary))
	if err := sim.ReplayDataset(ds, refProd); err != nil {
		t.Fatal(err)
	}
	if err := refProd.Flush(); err != nil {
		t.Fatal(err)
	}
	ref := make(map[string][]byte)
	refETag := make(map[string]string)
	for _, path := range []string{"/api/v1/live/summary", "/api/v1/live/analysis", "/api/v1/live/continents"} {
		code, body, hdr := getFull(t, refBase+path)
		if code != http.StatusOK {
			t.Fatalf("reference %s: %d %s", path, code, body)
		}
		ref[path] = body
		refETag[path] = hdr.Get("ETag")
	}

	for _, n := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("peers=%d", n), func(t *testing.T) {
			ids := make([]string, n)
			for i := range ids {
				ids[i] = fmt.Sprintf("peer-%d", i)
			}
			ring, err := cluster.NewRing(ids, total)
			if err != nil {
				t.Fatal(err)
			}

			addrs := make([]string, n)
			walDirs := make([]string, n)
			procs := make([]*exec.Cmd, n)
			peerSpecs := make([]string, n)
			for i, id := range ids {
				addrs[i] = pickAddr(t)
				walDirs[i] = filepath.Join(t.TempDir(), id)
				procs[i] = exec.Command(atlasd, clusterPeerArgs(walDirs[i], addrs[i], id, total, ring.Partitions(id))...)
				if err := procs[i].Start(); err != nil {
					t.Fatal(err)
				}
				peerSpecs[i] = id + "=http://" + addrs[i]
			}
			defer func() {
				for _, p := range procs {
					if p.Process != nil {
						p.Process.Kill()
						p.Wait()
					}
				}
			}()
			for i := range addrs {
				waitForListen(t, addrs[i])
				waitForReady(t, "http://"+addrs[i])
			}

			coordAddr := pickAddr(t)
			coordProc := exec.Command(atlasd, "-coordinator",
				"-peers", strings.Join(peerSpecs, ","),
				"-partitions-total", strconv.Itoa(total),
				"-addr", coordAddr)
			if err := coordProc.Start(); err != nil {
				t.Fatal(err)
			}
			defer func() {
				coordProc.Process.Kill()
				coordProc.Wait()
			}()
			waitForListen(t, coordAddr)
			coordBase := "http://" + coordAddr

			// Whole stream through the coordinator, binary codec.
			prod := atlasapi.NewStreamProducer(ctx, coordBase, atlasapi.WithCodec(atlasapi.CodecBinary))
			if err := sim.ReplayDataset(ds, prod); err != nil {
				t.Fatal(err)
			}
			if err := prod.Flush(); err != nil {
				t.Fatal(err)
			}
			checkClusterMatchesReference(t, coordBase, ref, refETag)

			switch n {
			case 2:
				killAndRestartPeer(t, atlasd, coordBase, ring, ids, addrs, walDirs, procs, total)
				checkClusterMatchesReference(t, coordBase, ref, refETag)
			case 5:
				rebalanceOntoNewPeer(t, atlasd, churnctl, coordBase, ids, addrs, total)
				checkClusterMatchesReference(t, coordBase, ref, refETag)
			}
		})
	}
}

// killAndRestartPeer SIGKILLs one peer, verifies the coordinator sheds
// (503 + Retry-After, never a partial merge, never a silent ingest
// ack), then restarts the peer on its WAL directory and waits for
// recovery.
func killAndRestartPeer(t *testing.T, atlasd, coordBase string, ring *cluster.Ring, ids, addrs, walDirs []string, procs []*exec.Cmd, total int) {
	t.Helper()
	victim := 1
	if err := procs[victim].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	procs[victim].Wait()

	code, body, hdr := getFull(t, coordBase+"/api/v1/live/summary")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("summary with a peer dead: %d %s (must shed, never merge partially)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	// Ingest routed at the dead peer: refused with nothing consumed.
	var probe atlasdata.ProbeID
	for id := atlasdata.ProbeID(900000); id < 990000; id++ {
		if ring.Owner(stream.PartitionOf(id, total)) == ids[victim] {
			probe = id
			break
		}
	}
	line := fmt.Sprintf("{\"kind\":\"meta\",\"probe\":%d,\"country\":\"DE\",\"version\":3}\n", probe)
	resp, err := http.Post(coordBase+atlasapi.RouteStreamRecords, atlasapi.ContentTypeNDJSON, strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest for a dead peer's partition: %d %s, want 503", resp.StatusCode, rb)
	}
	var env struct {
		Accepted int `json:"accepted"`
	}
	if err := json.Unmarshal(rb, &env); err != nil {
		t.Fatalf("shed envelope not JSON: %s", rb)
	}
	if env.Accepted != 0 {
		t.Errorf("dead-peer batch reported %d accepted, want 0", env.Accepted)
	}

	// Restart on the same WAL directory and address; the WAL layout (not
	// the flags) decides what it owns.
	procs[victim] = exec.Command(atlasd, clusterPeerArgs(walDirs[victim], addrs[victim], ids[victim], total, nil)...)
	if err := procs[victim].Start(); err != nil {
		t.Fatal(err)
	}
	waitForListen(t, addrs[victim])
	waitForReady(t, "http://"+addrs[victim])

	// The coordinator's breaker for the dead peer may still be cooling
	// down; recovery is complete when a merge succeeds again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body, _ := getFull(t, coordBase+"/api/v1/live/summary")
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never recovered after restart: %d %s", code, body)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// rebalanceOntoNewPeer boots an empty peer, rebalances the membership
// through the coordinator (WAL segments and checkpoints ship for every
// moved partition), and checks churnctl -cluster status sees the new
// topology.
func rebalanceOntoNewPeer(t *testing.T, atlasd, churnctl, coordBase string, ids, addrs []string, total int) {
	t.Helper()
	newID := fmt.Sprintf("peer-%d", len(ids))
	newAddr := pickAddr(t)
	newWAL := filepath.Join(t.TempDir(), newID)
	proc := exec.Command(atlasd, clusterPeerArgs(newWAL, newAddr, newID, total, nil)...)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		proc.Process.Kill()
		proc.Wait()
	})
	waitForListen(t, newAddr)
	waitForReady(t, "http://"+newAddr)

	members := make([]cluster.Peer, 0, len(ids)+1)
	for i, id := range ids {
		members = append(members, cluster.Peer{ID: id, URL: "http://" + addrs[i]})
	}
	members = append(members, cluster.Peer{ID: newID, URL: "http://" + newAddr})
	body, err := json.Marshal(map[string]any{"peers": members})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(coordBase+"/api/v1/cluster/members", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("members POST: %d %s", resp.StatusCode, rb)
	}
	var reply struct {
		Moves []cluster.Move `json:"moves"`
	}
	if err := json.Unmarshal(rb, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Moves) == 0 {
		t.Fatal("rebalance onto a sixth peer moved nothing")
	}
	for _, mv := range reply.Moves {
		if mv.To != newID {
			t.Errorf("move %+v: growing the ring must only move partitions to the new peer", mv)
		}
	}

	out := run(t, churnctl, "-cluster", "status", "-url", coordBase)
	if !strings.Contains(out, newID) {
		t.Errorf("churnctl -cluster status does not mention %s:\n%s", newID, out)
	}
	if strings.Count(out, "ready") < len(ids)+1 {
		t.Errorf("churnctl -cluster status does not show %d ready peers:\n%s", len(ids)+1, out)
	}
}
