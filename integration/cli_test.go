// Package integration drives the built binaries end to end: atlasgen
// writes a dataset directory, churnctl analyses it (from disk and over
// HTTP from atlasd), and the outputs carry the paper's artefacts.
package integration

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildBinaries compiles the three commands once per test run.
func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dynaddr-bin")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, cmd := range []string{"atlasgen", "churnctl", "atlasd", "experiments"} {
			out, err := exec.Command("go", "build", "-o",
				filepath.Join(dir, cmd), "dynaddr/cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("building %s: %v\n%s", cmd, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binDir
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestAtlasgenThenChurnctl(t *testing.T) {
	bins := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "ds")
	truthPath := filepath.Join(t.TempDir(), "truth.json")

	out := run(t, filepath.Join(bins, "atlasgen"),
		"-out", dataDir, "-seed", "11", "-scale", "0.15", "-truth", truthPath)
	if !strings.Contains(out, "probes") {
		t.Errorf("atlasgen output: %q", out)
	}
	if fi, err := os.Stat(truthPath); err != nil || fi.Size() == 0 {
		t.Errorf("truth journal missing: %v", err)
	}
	for _, f := range []string{"connlogs.tsv", "kroot.tsv", "uptime.tsv", "probes.json", "pfx2as-201501.txt"} {
		if _, err := os.Stat(filepath.Join(dataDir, f)); err != nil {
			t.Errorf("dataset file %s missing: %v", f, err)
		}
	}

	summary := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "summary")
	if !strings.Contains(summary, "geo-analyzable") {
		t.Errorf("summary output: %q", summary)
	}

	table5 := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "table5")
	if !strings.Contains(table5, "Table 5") || !strings.Contains(table5, "Harmonic") {
		t.Errorf("table5 output: %q", table5)
	}

	all := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "all")
	for _, artefact := range []string{"Table 2", "Table 5", "Table 6", "Table 7",
		"Figure 1", "Figure 6", "Figure 9", "link-type", "churn"} {
		if !strings.Contains(all, artefact) {
			t.Errorf("'all' output missing %q", artefact)
		}
	}

	csv := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "-csv", "table7")
	if !strings.HasPrefix(csv, "AS,ASN,") {
		t.Errorf("csv output: %q", csv)
	}

	probe := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "probe", "1001")
	for _, want := range []string{"probe 1001", "filtering:", "sessions:"} {
		if !strings.Contains(probe, want) {
			t.Errorf("probe drilldown missing %q:\n%s", want, probe)
		}
	}

	svgDir := filepath.Join(t.TempDir(), "figs")
	run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "-svg", svgDir, "summary")
	entries, err := os.ReadDir(svgDir)
	if err != nil || len(entries) < 8 {
		t.Errorf("svg export wrote %d files: %v", len(entries), err)
	}
}

func TestChurnctlDeterministicAcrossRuns(t *testing.T) {
	bins := buildBinaries(t)
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	run(t, filepath.Join(bins, "atlasgen"), "-out", dirA, "-seed", "33", "-scale", "0.1")
	run(t, filepath.Join(bins, "atlasgen"), "-out", dirB, "-seed", "33", "-scale", "0.1")
	outA := run(t, filepath.Join(bins, "churnctl"), "-data", dirA, "all")
	outB := run(t, filepath.Join(bins, "churnctl"), "-data", dirB, "all")
	if outA != outB {
		t.Error("same seed produced different analyses across processes")
	}
}

func TestAtlasdServeAndScrape(t *testing.T) {
	bins := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "ds")
	run(t, filepath.Join(bins, "atlasgen"), "-out", dataDir, "-seed", "11", "-scale", "0.1")

	addr := pickAddr(t)
	srv := exec.Command(filepath.Join(bins, "atlasd"), "-data", dataDir, "-addr", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)

	scraped := run(t, filepath.Join(bins, "churnctl"), "-url", "http://"+addr, "summary")
	local := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "summary")
	if scraped != local {
		t.Errorf("scraped summary differs from local:\n%s\nvs\n%s", scraped, local)
	}
}

// TestChaosScrapeWithinBudget is the chaos smoke: atlasd injects 10%
// dropped connections, 5% truncated bodies and 5% 503s, and churnctl's
// retry/backoff/error-budget machinery still assembles the same
// analysis a clean disk load produces.
func TestChaosScrapeWithinBudget(t *testing.T) {
	bins := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "ds")
	run(t, filepath.Join(bins, "atlasgen"), "-out", dataDir, "-seed", "19", "-scale", "0.08")

	addr := pickAddr(t)
	srv := exec.Command(filepath.Join(bins, "atlasd"), "-data", dataDir, "-addr", addr,
		"-chaos-seed", "42", "-chaos-drop", "0.10", "-chaos-truncate", "0.05", "-chaos-error", "0.05")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	waitForListen(t, addr)

	scraped := run(t, filepath.Join(bins, "churnctl"), "-url", "http://"+addr,
		"-retry-max", "8", "-retry-base", "20ms", "-retry-cap", "200ms", "-allow-failures", "5",
		"summary")
	local := run(t, filepath.Join(bins, "churnctl"), "-data", dataDir, "summary")
	if scraped != local {
		t.Errorf("chaos-scraped summary differs from local:\n%s\nvs\n%s", scraped, local)
	}
}

func TestExperimentsBinaryPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale experiments run")
	}
	bins := buildBinaries(t)
	out := run(t, filepath.Join(bins, "experiments"), "-scale", "1")
	if !strings.Contains(out, "shape checks pass") {
		t.Errorf("experiments output: %q", out)
	}
	if strings.Contains(out, "DIVERGES") {
		t.Errorf("experiments reported divergences:\n%s", out)
	}
}

func pickAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitForListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("atlasd did not listen on %s", addr)
}
