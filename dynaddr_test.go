package dynaddr

import (
	"path/filepath"
	"reflect"
	"testing"

	"dynaddr/internal/core"
)

func smallConfig(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = 0.15
	return cfg
}

func TestFacadeEndToEnd(t *testing.T) {
	world, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(world.Dataset, Options{})
	if len(rep.Filter.GeoProbes) == 0 {
		t.Fatal("no analyzable probes")
	}
	if rep.Table7All.Changes == 0 {
		t.Fatal("no address changes")
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	world, err := Generate(smallConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ds")
	if err := SaveDataset(world.Dataset, dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Probes, world.Dataset.Probes) {
		t.Error("probe metadata did not round-trip")
	}
	// The analysis over the loaded dataset must match the in-memory one.
	repA := Analyze(world.Dataset, Options{})
	repB := Analyze(loaded, Options{})
	if repA.Table7All != repB.Table7All {
		t.Errorf("Table 7 differs after round trip: %+v vs %+v", repA.Table7All, repB.Table7All)
	}
	if len(repA.Table5) != len(repB.Table5) {
		t.Errorf("Table 5 row counts differ: %d vs %d", len(repA.Table5), len(repB.Table5))
	}
	for _, c := range core.Categories {
		if repA.Table2[c] != repB.Table2[c] {
			t.Errorf("Table 2 category %v differs: %d vs %d", c, repA.Table2[c], repB.Table2[c])
		}
	}
}

func TestNamesResolvers(t *testing.T) {
	world, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	names := Names(world)
	if got := names(3320); got != "DTAG" {
		t.Errorf("Names(3320) = %q, want DTAG", got)
	}
	if got := names(999999); got != "" {
		t.Errorf("unknown ASN should resolve empty, got %q", got)
	}
	if Names(nil) != nil {
		t.Error("Names(nil) should be nil")
	}

	pn := ProfileNames(PaperProfiles())
	if got := pn(3215); got != "Orange" {
		t.Errorf("ProfileNames(3215) = %q", got)
	}
	if got := pn(200011); got == "" {
		t.Error("sibling ASN should resolve via ProfileNames")
	}
}

func TestFromStd(t *testing.T) {
	if FromStd(90e9) != 90*Second { // 90s in nanoseconds
		t.Errorf("FromStd(90s) = %v", FromStd(90e9))
	}
	if Day != 24*Hour || Week != 7*Day || Minute != 60*Second {
		t.Error("re-exported duration constants inconsistent")
	}
}

func TestDefaultConfigMatchesPaperShape(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cfg.FirmwareDays) != 5 {
		t.Errorf("default world has %d firmware pushes, paper observed 5", len(cfg.FirmwareDays))
	}
	if len(PaperProfiles()) < 30 {
		t.Error("paper profile registry too small")
	}
}
