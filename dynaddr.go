// Package dynaddr reproduces the measurement study "Reasons Dynamic
// Addresses Change" (Padmanabhan, Dhamdhere, Aben, claffy, Spring — IMC
// 2016) as a library: a generator for RIPE-Atlas-shaped datasets
// (connection logs, k-root ping rounds, SOS-uptime records, probe
// archive, monthly pfx2as snapshots) and the complete analysis pipeline
// that recovers the paper's tables and figures from them.
//
// Typical use:
//
//	world, err := dynaddr.Generate(dynaddr.DefaultConfig())
//	if err != nil { ... }
//	report, err := dynaddr.NewAnalyzer().Analyze(world.Dataset)
//	if err != nil { ... }
//	report.RenderTable5(dynaddr.Names(world)).Render(os.Stdout)
//
// Datasets round-trip through directories with SaveDataset/LoadDataset,
// so the generator and the analyzer can run in separate processes — the
// cmd/atlasgen and cmd/churnctl binaries are exactly that split.
package dynaddr

import (
	"time"

	"dynaddr/internal/asdb"
	"dynaddr/internal/atlasdata"
	"dynaddr/internal/core"
	"dynaddr/internal/isp"
	"dynaddr/internal/sim"
	"dynaddr/internal/simclock"
)

// Duration is simulated time in seconds; configuration fields use it.
type Duration = simclock.Duration

// Re-exported duration units for configuration literals.
const (
	Second = simclock.Second
	Minute = simclock.Minute
	Hour   = simclock.Hour
	Day    = simclock.Day
	Week   = simclock.Week
)

// FromStd converts a standard library duration to simulated seconds.
func FromStd(d time.Duration) Duration { return Duration(d / time.Second) }

// Config parameterises dataset generation; see sim.Config for the
// field-by-field documentation.
type Config = sim.Config

// World is a generated deployment: datasets plus generative ground
// truth.
type World = sim.World

// Dataset bundles the three record streams, the probe archive and the
// pfx2as snapshots.
type Dataset = atlasdata.Dataset

// Report holds every computed table and figure.
type Report = core.Report

// Options tune the analysis (figure AS selection and similar).
type Options = core.Options

// Profile is one ISP's ground-truth behaviour.
type Profile = isp.Profile

// DefaultConfig returns the paper-shaped world configuration: the full
// ISP registry at its published deployment sizes, the 2015 study year,
// and the population mix of Table 2.
func DefaultConfig() Config { return sim.DefaultConfig() }

// PaperProfiles returns the ISP registry encoding the paper's per-AS
// ground truth (Tables 5-7).
func PaperProfiles() []Profile { return isp.PaperProfiles() }

// Generate builds a synthetic world.
func Generate(cfg Config) (*World, error) { return sim.Generate(cfg) }

// RecordSink consumes a live record stream in per-probe time order; the
// streaming Ingester satisfies it.
type RecordSink = sim.RecordSink

// GenerateTo builds a world while also driving sink record by record,
// probe by probe — the streaming counterpart of Generate.
func GenerateTo(cfg Config, sink RecordSink) (*World, error) { return sim.GenerateTo(cfg, sink) }

// ReplayDataset streams an existing dataset into sink in generation
// order (probes ascending, records per probe merged by time).
func ReplayDataset(ds *Dataset, sink RecordSink) error { return sim.ReplayDataset(ds, sink) }

// Analyze runs the full analysis pipeline over a dataset, sequentially
// on the calling goroutine.
//
// Deprecated: use NewAnalyzer with functional options instead; it runs
// the staged parallel engine, supports context cancellation and stage
// selection, and produces a byte-identical Report. Analyze remains so
// existing callers keep compiling:
//
//	rep := dynaddr.Analyze(ds, opts)              // before
//	rep, err := dynaddr.NewAnalyzer(              // after
//		dynaddr.WithOptions(opts)).Analyze(ds)
func Analyze(ds *Dataset, opts Options) *Report { return core.Run(ds, opts) }

// SaveDataset writes a dataset to a directory.
func SaveDataset(ds *Dataset, dir string) error { return ds.Save(dir) }

// LoadDataset reads a dataset directory written by SaveDataset.
func LoadDataset(dir string) (*Dataset, error) { return atlasdata.Load(dir) }

// Names builds an ASN-to-name resolver from a world's registry, for the
// Render* methods.
func Names(w *World) core.NameFunc {
	if w == nil || w.Registry == nil {
		return nil
	}
	reg := w.Registry
	return func(asn uint32) string {
		if as, ok := reg.Lookup(asdb.ASN(asn)); ok {
			return as.Name
		}
		return ""
	}
}

// ProfileNames builds an ASN-to-name resolver from a profile list, for
// analyses of datasets loaded from disk (where no registry travelled
// with the data).
func ProfileNames(profiles []Profile) core.NameFunc {
	m := make(map[uint32]string, len(profiles))
	for _, p := range profiles {
		m[uint32(p.ASN)] = p.Name
		if p.SiblingASN != 0 {
			m[uint32(p.SiblingASN)] = p.Name + " (sibling)"
		}
	}
	return func(asn uint32) string { return m[asn] }
}
