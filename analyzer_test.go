package dynaddr

import (
	"context"
	"reflect"
	"testing"
)

// TestAnalyzerGoldenEquality is the acceptance gate for the staged
// engine: across several seeded worlds, the parallel Analyzer's Report
// must deep-equal the sequential pipeline's, ignoring only the
// schedule-describing Metrics. Run under -race in CI.
func TestAnalyzerGoldenEquality(t *testing.T) {
	for _, seed := range []uint64{21, 22, 23} {
		world, err := Generate(smallConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		want := Analyze(world.Dataset, Options{})
		for _, workers := range []int{1, 4} {
			got, err := NewAnalyzer(WithParallelism(workers)).Analyze(world.Dataset)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if got.Metrics == nil {
				t.Fatalf("seed %d workers %d: no metrics", seed, workers)
			}
			got.Metrics = nil
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d workers %d: parallel report differs from sequential", seed, workers)
			}
		}
	}
}

func TestAnalyzerOptions(t *testing.T) {
	world, err := Generate(smallConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{TopASes: 3, Figure3Country: "FR", Figure3MinYears: 1}
	want := Analyze(world.Dataset, opts)

	fields, err := NewAnalyzer(
		WithTopASes(3),
		WithFigure3Country("FR"),
		WithFigure3MinYears(1),
	).Analyze(world.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := NewAnalyzer(WithOptions(opts)).Analyze(world.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Report{"field options": fields, "WithOptions": bulk} {
		got.Metrics = nil
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: report differs from sequential with same options", name)
		}
	}
	if len(fields.Figure2) > 3 {
		t.Errorf("TopASes(3) ignored: %d Figure 2 curves", len(fields.Figure2))
	}
}

func TestAnalyzerStages(t *testing.T) {
	world, err := Generate(smallConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewAnalyzer(WithStages(StageTTF)).Analyze(world.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filter == nil {
		t.Fatal("ttf's filter dependency did not run")
	}
	if rep.Outage != nil || rep.Table7All.Changes != 0 {
		t.Fatal("unselected stages ran")
	}
	if _, err := NewAnalyzer(WithStages("bogus")).Analyze(world.Dataset); err == nil {
		t.Fatal("unknown stage accepted")
	}
	if got := Stages(); len(got) == 0 || got[0] != StageFilter {
		t.Fatalf("Stages() = %v", got)
	}
	if st, err := ParseStages("filter,prefix"); err != nil || len(st) != 2 {
		t.Fatalf("ParseStages = %v, %v", st, err)
	}
}

func TestAnalyzerContextCancel(t *testing.T) {
	world, err := Generate(smallConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewAnalyzer().AnalyzeContext(ctx, world.Dataset); err == nil {
		t.Fatal("cancelled analysis succeeded")
	}
}

// TestIngesterReexport exercises the root-level live-ingest surface:
// the re-exported constructor, config, and snapshot types.
func TestIngesterReexport(t *testing.T) {
	world, err := Generate(smallConfig(34))
	if err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(StreamConfig{Shards: 2, Pfx2AS: world.Dataset.Pfx2AS})
	if err := ReplayDataset(world.Dataset, ing); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot = ing.Snapshot()
	if snap.Probes == 0 {
		t.Fatal("snapshot saw no probes")
	}
	var counts RecordCounts = snap.Records
	if counts.Total() == 0 {
		t.Fatal("snapshot counted no records")
	}
	for _, asn := range snap.ASNs() {
		var agg *ASAggregate = snap.AS(asn)
		if agg == nil || agg.ASN != asn {
			t.Fatalf("AS(%d) = %+v", asn, agg)
		}
	}
	for _, m := range world.Dataset.Probes {
		if err := ing.Meta(m); err != ErrIngesterClosed {
			t.Fatalf("ingest after Close: err = %v, want ErrIngesterClosed", err)
		}
		break
	}
}
