module dynaddr

go 1.22
